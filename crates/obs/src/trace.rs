//! Request-scoped tracing with deterministic sampling, slowest-K
//! retention, and tail-latency exemplars.
//!
//! A [`Tracer`] is owned by whoever serves traffic (one per server
//! instance, like the serve crate's metrics registry). Each sampled
//! request gets an [`ActiveTrace`] that records an ordered list of
//! stages (`parse → cache → store_read → serialize → write` on the
//! serve path; `wal_append → apply → snapshot → engine → swap` for a
//! refresh cycle) with wall-time deltas. Finished traces land in a
//! bounded store:
//!
//! * **slowest-K per verb** — the tail-latency exemplars worth keeping;
//! * **a recent ring** — so `trace id N` can find a trace the client
//!   just saw sampled;
//! * **per-bucket exemplars** — every latency-histogram bucket at or
//!   above a threshold keeps a reference to the most recent trace that
//!   landed in it, keyed by the same [`crate::registry::bucket_index`]
//!   the histograms use. "Why is the 4–8ms bucket populated?" is
//!   answered by an actual trace from that bucket.
//!
//! # Sampling is deterministic
//!
//! Head-based 1-in-N sampling by a request counter — request `i` is
//! traced iff `i % N == 0` — with no RNG anywhere. The *latency
//! accounting* ([`Tracer::observe`]) runs for **every** request, traced
//! or not, so per-verb percentiles and the [`SloMonitor`] see full
//! traffic; sampling only bounds how many requests pay for stage-level
//! clock reads.
//!
//! # Disabled runs stay bit-identical
//!
//! Every entry point checks [`crate::enabled`] first. With `QRANK_OBS`
//! unset (and no `--trace-sample`), `begin_*` returns `None`, `observe`
//! returns without reading a clock, and no lock is touched.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::{array, Obj};
use crate::registry::{bucket_index, bucket_lower_bound, Histogram};
use crate::slo::{SloConfig, SloMonitor, VerbSlo};

/// Tracer knobs; see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Trace 1 in every `sample_every` requests (0 = never trace
    /// requests; forced traces, e.g. refresh cycles, still record).
    pub sample_every: u64,
    /// Slowest traces retained per verb.
    pub slowest_k: usize,
    /// Recently finished traces retained for by-id lookup.
    pub recent_capacity: usize,
    /// Histogram buckets at or above this index keep a per-bucket
    /// exemplar trace. The default (bucket 20 = `[2^20, 2^21)` ns ≈
    /// 1–2ms) keeps exemplars for everything at millisecond scale.
    pub exemplar_min_bucket: usize,
    /// Objectives for the embedded [`SloMonitor`].
    pub slo: SloConfig,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: 0,
            slowest_k: 8,
            recent_capacity: 256,
            exemplar_min_bucket: 20,
            slo: SloConfig::default(),
        }
    }
}

/// One stage of a finished trace, relative to the trace start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Stage name (`"parse"`, `"store_read"`, `"write"`, …).
    pub name: &'static str,
    /// Nanoseconds from trace start to stage start.
    pub start_ns: u64,
    /// Stage duration in nanoseconds.
    pub dur_ns: u64,
}

/// A finished request- or refresh-scoped trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Tracer-unique id (dense, starting at 1).
    pub id: u64,
    /// The verb this trace describes (`"score"`, `"topk"`, `"refresh"`…).
    pub verb: &'static str,
    /// Which request this was (the sampling counter's value), or the
    /// forced-trace ordinal for unsampled verbs like `refresh`.
    pub seq: u64,
    /// Nanoseconds from the tracer's epoch to trace start.
    pub start_ns: u64,
    /// End-to-end duration in nanoseconds.
    pub total_ns: u64,
    /// Did the request succeed?
    pub ok: bool,
    /// Ordered stages with wall-time deltas.
    pub stages: Vec<Stage>,
    /// Free-form detail (`generation=7 columns_solved=1`…).
    pub detail: String,
}

impl Trace {
    /// Render as one JSON object (stage times in ns, totals in both ns
    /// and µs for human eyes).
    pub fn to_json(&self) -> String {
        let stages = array(self.stages.iter().map(|s| {
            Obj::new()
                .str("name", s.name)
                .int("start_ns", s.start_ns)
                .int("dur_ns", s.dur_ns)
                .finish()
        }));
        Obj::new()
            .int("id", self.id)
            .str("verb", self.verb)
            .int("seq", self.seq)
            .int("start_ns", self.start_ns)
            .int("total_ns", self.total_ns)
            .num("total_us", self.total_ns as f64 / 1e3)
            .bool("ok", self.ok)
            .str("detail", &self.detail)
            .raw("stages", &stages)
            .finish()
    }
}

/// A trace being recorded. Stages are sequential: opening the next
/// stage closes the previous one (the serve path is a straight line per
/// request), and [`Tracer::finish`] closes whatever is still open.
#[derive(Debug)]
pub struct ActiveTrace {
    id: u64,
    verb: &'static str,
    seq: u64,
    started: Instant,
    start_ns: u64,
    stages: Vec<Stage>,
    open: Option<(&'static str, Instant)>,
    detail: String,
}

impl ActiveTrace {
    /// This trace's id (stable through `finish`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Re-verb the trace once the verb is actually known (the serve
    /// path begins the trace before parsing the request line).
    pub fn set_verb(&mut self, verb: &'static str) {
        self.verb = verb;
    }

    /// Close the open stage (if any) and start a new one.
    pub fn stage(&mut self, name: &'static str) {
        self.close_open();
        self.open = Some((name, Instant::now()));
    }

    /// Close the open stage without starting another.
    pub fn end_stage(&mut self) {
        self.close_open();
    }

    /// Append a completed stage with caller-measured times (both
    /// relative to the trace start) — for work attributed after the
    /// fact, like the parse stage that ran before the verb was known.
    /// Closes any open stage first, preserving sequential order.
    pub fn push_stage(&mut self, name: &'static str, start_ns: u64, dur_ns: u64) {
        self.close_open();
        self.stages.push(Stage {
            name,
            start_ns,
            dur_ns,
        });
    }

    /// Append to the trace's detail string (`"; "`-joined).
    pub fn note(&mut self, detail: &str) {
        if !self.detail.is_empty() {
            self.detail.push_str("; ");
        }
        self.detail.push_str(detail);
    }

    /// Nanoseconds since the trace started.
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    fn close_open(&mut self) {
        if let Some((name, at)) = self.open.take() {
            let start_ns = at.duration_since(self.started).as_nanos() as u64;
            let dur_ns = at.elapsed().as_nanos() as u64;
            self.stages.push(Stage {
                name,
                start_ns,
                dur_ns,
            });
        }
    }
}

/// Bounded storage for finished traces.
#[derive(Debug, Default)]
struct Store {
    /// Per verb, sorted slowest-first, truncated to `slowest_k`.
    slowest: BTreeMap<&'static str, Vec<Arc<Trace>>>,
    /// Most recently finished traces, oldest first.
    recent: VecDeque<Arc<Trace>>,
    /// `(verb, histogram bucket) → ` most recent trace in that bucket.
    exemplars: BTreeMap<(&'static str, usize), Arc<Trace>>,
}

/// The tracing subsystem: sampling, storage, per-verb latency, SLO.
/// See the module docs.
#[derive(Debug)]
pub struct Tracer {
    cfg: TraceConfig,
    epoch: Instant,
    requests: AtomicU64,
    sampled: AtomicU64,
    forced: AtomicU64,
    next_id: AtomicU64,
    store: Mutex<Store>,
    verbs: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
    slo: SloMonitor,
}

impl Tracer {
    /// Build a tracer; its monotonic epoch starts now.
    pub fn new(cfg: TraceConfig) -> Self {
        let slo = SloMonitor::new(cfg.slo.clone());
        Tracer {
            cfg,
            epoch: Instant::now(),
            requests: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            forced: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            store: Mutex::new(Store::default()),
            verbs: Mutex::new(BTreeMap::new()),
            slo,
        }
    }

    /// The configuration this tracer was built with.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Nanoseconds since this tracer's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Requests seen by the sampling counter so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests that were actually traced.
    pub fn sampled(&self) -> u64 {
        self.sampled.load(Ordering::Relaxed)
    }

    /// Head-based sampling entry point: count this request and return a
    /// trace iff its index is a multiple of `sample_every`. `None` when
    /// observability is disabled, `sample_every` is 0, or the request
    /// is simply not sampled.
    pub fn begin_sampled(&self, verb: &'static str) -> Option<ActiveTrace> {
        if !crate::enabled() || self.cfg.sample_every == 0 {
            return None;
        }
        let seq = self.requests.fetch_add(1, Ordering::Relaxed);
        if !seq.is_multiple_of(self.cfg.sample_every) {
            return None;
        }
        self.sampled.fetch_add(1, Ordering::Relaxed);
        Some(self.start(verb, seq))
    }

    /// Unconditionally trace (refresh cycles, recovery): bypasses the
    /// sampling counter but still honors the global enabled gate.
    pub fn begin(&self, verb: &'static str) -> Option<ActiveTrace> {
        if !crate::enabled() {
            return None;
        }
        let seq = self.forced.fetch_add(1, Ordering::Relaxed);
        Some(self.start(verb, seq))
    }

    fn start(&self, verb: &'static str, seq: u64) -> ActiveTrace {
        let started = Instant::now();
        ActiveTrace {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            verb,
            seq,
            start_ns: started.duration_since(self.epoch).as_nanos() as u64,
            started,
            stages: Vec::with_capacity(8),
            open: None,
            detail: String::new(),
        }
    }

    /// Latency accounting for **every** request (traced or not): feeds
    /// the per-verb histogram and the SLO monitor. No-op when disabled.
    pub fn observe(&self, verb: &'static str, latency_ns: u64, ok: bool) {
        if !crate::enabled() {
            return;
        }
        self.verb_histogram(verb).record(latency_ns);
        self.slo.record(verb, self.now_ns(), latency_ns, ok);
    }

    /// Close and store a trace; returns its end-to-end duration. The
    /// caller still calls [`observe`](Self::observe) separately (once
    /// per request, sampled or not).
    pub fn finish(&self, mut trace: ActiveTrace, ok: bool) -> u64 {
        trace.close_open();
        let total_ns = trace.started.elapsed().as_nanos() as u64;
        let done = Arc::new(Trace {
            id: trace.id,
            verb: trace.verb,
            seq: trace.seq,
            start_ns: trace.start_ns,
            total_ns,
            ok,
            stages: trace.stages,
            detail: trace.detail,
        });
        let mut store = self.store.lock().unwrap();
        let slowest = store.slowest.entry(done.verb).or_default();
        let pos = slowest
            .binary_search_by(|t| done.total_ns.cmp(&t.total_ns))
            .unwrap_or_else(|p| p);
        if pos < self.cfg.slowest_k {
            slowest.insert(pos, Arc::clone(&done));
            slowest.truncate(self.cfg.slowest_k);
        }
        if store.recent.len() >= self.cfg.recent_capacity.max(1) {
            store.recent.pop_front();
        }
        store.recent.push_back(Arc::clone(&done));
        let bucket = bucket_index(done.total_ns);
        if bucket >= self.cfg.exemplar_min_bucket {
            store.exemplars.insert((done.verb, bucket), done);
        }
        total_ns
    }

    fn verb_histogram(&self, verb: &'static str) -> Arc<Histogram> {
        let mut verbs = self.verbs.lock().unwrap();
        Arc::clone(verbs.entry(verb).or_default())
    }

    /// Slowest retained traces, optionally filtered to one verb;
    /// slowest first (across verbs, merged by duration).
    pub fn slowest(&self, verb: Option<&str>) -> Vec<Arc<Trace>> {
        let store = self.store.lock().unwrap();
        let mut out: Vec<Arc<Trace>> = store
            .slowest
            .iter()
            .filter(|(v, _)| verb.is_none_or(|want| **v == want))
            .flat_map(|(_, traces)| traces.iter().cloned())
            .collect();
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.id.cmp(&b.id)));
        out
    }

    /// Find a recently finished trace by id (recent ring, then the
    /// slowest-K and exemplar stores, which can outlive the ring).
    pub fn by_id(&self, id: u64) -> Option<Arc<Trace>> {
        let store = self.store.lock().unwrap();
        store
            .recent
            .iter()
            .rev()
            .find(|t| t.id == id)
            .or_else(|| store.slowest.values().flatten().find(|t| t.id == id))
            .or_else(|| store.exemplars.values().find(|t| t.id == id))
            .cloned()
    }

    /// Per-bucket exemplars: `(verb, bucket index, bucket lower bound
    /// in ns, trace)`, sorted by verb then bucket.
    pub fn exemplars(&self) -> Vec<(&'static str, usize, u64, Arc<Trace>)> {
        let store = self.store.lock().unwrap();
        store
            .exemplars
            .iter()
            .map(|(&(verb, bucket), t)| (verb, bucket, bucket_lower_bound(bucket), Arc::clone(t)))
            .collect()
    }

    /// SLO status per verb as of now.
    pub fn slo_status(&self) -> Vec<VerbSlo> {
        self.slo.status(self.now_ns())
    }

    /// JSON array of the slowest retained traces (optional verb filter).
    pub fn slowest_json(&self, verb: Option<&str>) -> String {
        array(self.slowest(verb).iter().map(|t| t.to_json()))
    }

    /// JSON array of the per-bucket exemplars.
    pub fn exemplars_json(&self) -> String {
        array(self.exemplars().into_iter().map(|(verb, bucket, lo, t)| {
            Obj::new()
                .str("verb", verb)
                .int("bucket", bucket as u64)
                .num("bucket_lo_us", lo as f64 / 1e3)
                .raw("trace", &t.to_json())
                .finish()
        }))
    }

    /// One JSON object with objectives, per-verb latency summaries
    /// (full-traffic percentiles, exact at the extremes), and
    /// multi-window burn rates.
    pub fn slo_json(&self) -> String {
        let slo_cfg = self.slo.config();
        let objectives = Obj::new()
            .num(
                "latency_objective_ms",
                slo_cfg.latency_objective_ns as f64 / 1e6,
            )
            .num("latency_goal", slo_cfg.latency_goal)
            .num("availability_goal", slo_cfg.availability_goal)
            .finish();
        let status = self.slo_status();
        let hists = self.verbs.lock().unwrap();
        let mut verbs = Obj::new();
        for v in &status {
            let mut entry = Obj::new();
            if let Some(h) = hists.get(v.verb) {
                let s = h.snapshot();
                entry
                    .int("count", s.count)
                    .num("mean_us", s.mean() / 1e3)
                    .num("p50_us", s.percentile(0.50) / 1e3)
                    .num("p99_us", s.percentile(0.99) / 1e3)
                    .num("min_us", s.min().unwrap_or(0) as f64 / 1e3)
                    .num("max_us", s.max().unwrap_or(0) as f64 / 1e3);
            }
            let windows = array(v.windows.iter().map(|w| {
                Obj::new()
                    .int("seconds", w.seconds)
                    .int("total", w.total)
                    .int("fast", w.fast)
                    .int("errors", w.errors)
                    .num("latency_burn", w.latency_burn)
                    .num("availability_burn", w.availability_burn)
                    .finish()
            }));
            entry
                .raw("windows", &windows)
                .bool("latency_breach", v.latency_breach)
                .bool("availability_breach", v.availability_breach);
            verbs.raw(v.verb, &entry.finish());
        }
        Obj::new()
            .int("requests", self.requests())
            .int("sampled", self.sampled())
            .int("sample_every", self.cfg.sample_every)
            .raw("objectives", &objectives)
            .raw("verbs", &verbs.finish())
            .finish()
    }

    /// Human-readable latency-attribution report: sampling counters,
    /// objectives, per-verb summaries with burn rates, and the slowest
    /// traces broken down stage by stage (time and share of total).
    pub fn report_text(&self) -> String {
        let mut out = String::new();
        let slo_cfg = self.slo.config();
        out.push_str(&format!(
            "tracing: {} requests, {} sampled (1-in-{})\n",
            self.requests(),
            self.sampled(),
            self.cfg.sample_every.max(1)
        ));
        out.push_str(&format!(
            "objectives: latency <= {:.3}ms for {:.2}% of requests, availability {:.2}%\n",
            slo_cfg.latency_objective_ns as f64 / 1e6,
            slo_cfg.latency_goal * 100.0,
            slo_cfg.availability_goal * 100.0
        ));
        let hists = self.verbs.lock().unwrap();
        for v in self.slo_status() {
            let summary = hists
                .get(v.verb)
                .map(|h| {
                    let s = h.snapshot();
                    format!(
                        "{} reqs, mean {:.1}us, p50 {:.1}us, p99 {:.1}us, max {:.1}us",
                        s.count,
                        s.mean() / 1e3,
                        s.percentile(0.50) / 1e3,
                        s.percentile(0.99) / 1e3,
                        s.max().unwrap_or(0) as f64 / 1e3
                    )
                })
                .unwrap_or_else(|| "no latency samples".to_string());
            out.push_str(&format!("verb {}: {}\n", v.verb, summary));
            for w in &v.windows {
                out.push_str(&format!(
                    "  window {:>5}s: total={} fast={} errors={} latency_burn={:.2} availability_burn={:.2}\n",
                    w.seconds, w.total, w.fast, w.errors, w.latency_burn, w.availability_burn
                ));
            }
            if v.latency_breach || v.availability_breach {
                out.push_str(&format!(
                    "  BREACH: latency={} availability={}\n",
                    v.latency_breach, v.availability_breach
                ));
            }
        }
        drop(hists);
        let slowest = self.slowest(None);
        if slowest.is_empty() {
            out.push_str("no traces retained yet\n");
        } else {
            out.push_str("slowest traces:\n");
            for t in slowest.iter().take(16) {
                out.push_str(&format!(
                    "  #{} {} {:.3}ms {}{}\n",
                    t.id,
                    t.verb,
                    t.total_ns as f64 / 1e6,
                    if t.ok { "ok" } else { "ERROR" },
                    if t.detail.is_empty() {
                        String::new()
                    } else {
                        format!(" [{}]", t.detail)
                    }
                ));
                let attributed: u64 = t.stages.iter().map(|s| s.dur_ns).sum();
                for s in &t.stages {
                    out.push_str(&format!(
                        "      {:<12} {:>10.3}ms {:>5.1}%\n",
                        s.name,
                        s.dur_ns as f64 / 1e6,
                        if t.total_ns == 0 {
                            0.0
                        } else {
                            s.dur_ns as f64 * 100.0 / t.total_ns as f64
                        }
                    ));
                }
                let other = t.total_ns.saturating_sub(attributed);
                if t.total_ns > 0 && other > 0 {
                    out.push_str(&format!(
                        "      {:<12} {:>10.3}ms {:>5.1}%\n",
                        "(other)",
                        other as f64 / 1e6,
                        other as f64 * 100.0 / t.total_ns as f64
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_tracer(sample_every: u64) -> Tracer {
        Tracer::new(TraceConfig {
            sample_every,
            slowest_k: 3,
            recent_capacity: 4,
            exemplar_min_bucket: 0, // every bucket keeps an exemplar
            ..TraceConfig::default()
        })
    }

    #[test]
    fn sampling_is_one_in_n_by_counter() {
        let _serial = crate::test_lock();
        crate::set_enabled(true);
        let t = test_tracer(3);
        let sampled: Vec<bool> = (0..9).map(|_| t.begin_sampled("score").is_some()).collect();
        assert_eq!(
            sampled,
            vec![true, false, false, true, false, false, true, false, false],
            "requests 0, 3, 6 are the sampled ones — no RNG anywhere"
        );
        assert_eq!(t.requests(), 9);
        assert_eq!(t.sampled(), 3);
        crate::set_enabled(false);
        assert!(t.begin_sampled("score").is_none(), "gated on QRANK_OBS");
        assert!(t.begin("refresh").is_none());
    }

    #[test]
    fn zero_sample_rate_never_traces_but_forced_does() {
        let _serial = crate::test_lock();
        crate::set_enabled(true);
        let t = test_tracer(0);
        assert!(t.begin_sampled("score").is_none());
        assert!(
            t.begin("refresh").is_some(),
            "forced traces bypass sampling"
        );
        crate::set_enabled(false);
    }

    #[test]
    fn stages_order_and_slowest_k_retention() {
        let _serial = crate::test_lock();
        crate::set_enabled(true);
        let t = test_tracer(1);
        for i in 0..6u64 {
            let mut tr = t.begin_sampled("topk").unwrap();
            tr.stage("parse");
            tr.stage("serialize");
            tr.push_stage("write", tr.elapsed_ns(), 10);
            tr.note(&format!("i={i}"));
            t.finish(tr, true);
        }
        let slowest = t.slowest(Some("topk"));
        assert_eq!(slowest.len(), 3, "bounded to slowest_k");
        assert!(
            slowest.windows(2).all(|w| w[0].total_ns >= w[1].total_ns),
            "sorted slowest first"
        );
        let tr = &slowest[0];
        let names: Vec<&str> = tr.stages.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["parse", "serialize", "write"]);
        assert!(
            tr.stages.windows(2).all(|w| w[0].start_ns <= w[1].start_ns),
            "stages ordered by start"
        );
        assert!(tr.detail.starts_with("i="));
        let json = tr.to_json();
        assert!(json.contains(r#""verb":"topk""#), "{json}");
        assert!(json.contains(r#""name":"parse""#));
        crate::set_enabled(false);
    }

    #[test]
    fn by_id_survives_recent_ring_eviction_via_slowest() {
        let _serial = crate::test_lock();
        crate::set_enabled(true);
        let t = test_tracer(1);
        let mut ids = Vec::new();
        for _ in 0..10 {
            let tr = t.begin_sampled("score").unwrap();
            ids.push(tr.id());
            t.finish(tr, true);
        }
        // recent_capacity = 4, so the earliest ids have left the ring;
        // at least the slowest-retained ones must still resolve.
        let last = *ids.last().unwrap();
        assert!(t.by_id(last).is_some(), "fresh trace resolves");
        assert!(t.by_id(last + 999).is_none());
        for kept in t.slowest(None) {
            assert!(t.by_id(kept.id).is_some(), "slowest-K traces resolve");
        }
        crate::set_enabled(false);
    }

    #[test]
    fn exemplars_key_by_verb_and_bucket() {
        let _serial = crate::test_lock();
        crate::set_enabled(true);
        let t = test_tracer(1);
        for _ in 0..3 {
            let tr = t.begin_sampled("score").unwrap();
            t.finish(tr, true);
        }
        let ex = t.exemplars();
        assert!(!ex.is_empty(), "min_bucket 0 keeps exemplars for all");
        for (verb, bucket, lo, tr) in &ex {
            assert_eq!(*verb, "score");
            assert_eq!(
                *bucket,
                bucket_index(tr.total_ns),
                "keyed like the histogram"
            );
            assert_eq!(*lo, bucket_lower_bound(*bucket));
        }
        let json = t.exemplars_json();
        assert!(json.contains(r#""bucket""#), "{json}");
        crate::set_enabled(false);
    }

    #[test]
    fn observe_feeds_percentiles_and_slo_for_untraced_traffic() {
        let _serial = crate::test_lock();
        crate::set_enabled(true);
        let t = Tracer::new(TraceConfig {
            sample_every: 0, // nothing traced…
            slo: SloConfig {
                latency_objective_ns: 1_000,
                ..SloConfig::default()
            },
            ..TraceConfig::default()
        });
        for _ in 0..9 {
            t.observe("score", 500, true);
        }
        t.observe("score", 2_000_000, false);
        let json = t.slo_json();
        assert!(json.contains(r#""score""#), "{json}");
        assert!(
            json.contains(r#""count":10"#),
            "full traffic counted: {json}"
        );
        let status = t.slo_status();
        assert_eq!(status.len(), 1);
        let w = &status[0].windows[0];
        assert_eq!((w.total, w.fast, w.errors), (10, 9, 1));
        let report = t.report_text();
        assert!(report.contains("verb score"), "{report}");
        assert!(report.contains("no traces retained yet"));
        crate::set_enabled(false);
    }
}
