//! The flight recorder: a bounded ring buffer of recent events.
//!
//! Spans, simulator steps, and refresh cycles append small events; the
//! ring keeps the most recent [`CAPACITY`] of them so a dump answers
//! "what was the process doing just now" without unbounded memory. The
//! dump happens on demand (`qrank obs-dump`, [`crate::dump_json`]) or
//! automatically when a thread panics, if [`install_panic_hook`] was
//! called.
//!
//! Events are timestamped with nanoseconds since the first event the
//! process recorded (a monotonic epoch), so cross-thread ordering by
//! `t_ns` is meaningful and wall-clock skew never enters the data.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

/// Maximum retained events; older ones fall off the front.
pub const CAPACITY: usize = 4096;

/// One flight-recorder entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global sequence number (total order of recording).
    pub seq: u64,
    /// Event name — a span path (`"pipeline.run/pipeline.align"`) or a
    /// subsystem tag (`"sim.step"`).
    pub name: String,
    /// Nanoseconds since the recorder's monotonic epoch.
    pub t_ns: u64,
    /// Duration in nanoseconds (0 for instantaneous events).
    pub dur_ns: u64,
    /// Span nesting depth at record time (0 for non-span events).
    pub depth: u32,
    /// Free-form detail string (e.g. per-step simulator counts).
    pub detail: String,
}

static RING: Mutex<VecDeque<Event>> = Mutex::new(VecDeque::new());
static SEQ: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Append an event (no-op when observability is disabled).
pub fn record(name: &str, dur_ns: u64, depth: u32, detail: &str) {
    if !crate::enabled() {
        return;
    }
    let t_ns = epoch().elapsed().as_nanos() as u64;
    let event = Event {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        name: name.to_string(),
        t_ns,
        dur_ns,
        depth,
        detail: detail.to_string(),
    };
    let mut ring = RING
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if ring.len() == CAPACITY {
        ring.pop_front();
    }
    ring.push_back(event);
}

/// Copy out the retained events, oldest first.
pub fn events() -> Vec<Event> {
    RING.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .cloned()
        .collect()
}

/// Drop every retained event (sequence numbers keep counting).
pub fn clear() {
    RING.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
}

/// Render the retained events as a JSON array, oldest first.
pub fn to_json() -> String {
    use crate::json::{array, Obj};
    array(events().into_iter().map(|e| {
        Obj::new()
            .int("seq", e.seq)
            .str("name", &e.name)
            .int("t_ns", e.t_ns)
            .int("dur_ns", e.dur_ns)
            .int("depth", u64::from(e.depth))
            .str("detail", &e.detail)
            .finish()
    }))
}

/// Install a panic hook (once per process, chaining any existing hook)
/// that dumps the most recent events to stderr — the flight recorder's
/// reason for existing.
pub fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            previous(info);
            let recent = events();
            if recent.is_empty() {
                return;
            }
            eprintln!(
                "--- qrank flight recorder (last {} events) ---",
                recent.len().min(32)
            );
            for e in recent.iter().rev().take(32).rev() {
                eprintln!(
                    "  [{:>12}ns] {} dur={}ns depth={} {}",
                    e.t_ns, e.name, e.dur_ns, e.depth, e.detail
                );
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_bounded() {
        let _serial = crate::test_lock();
        crate::set_enabled(true);
        clear();
        for i in 0..3 {
            record("t.event", i, 0, "d");
        }
        let evs = events();
        assert_eq!(evs.len(), 3);
        assert!(evs[0].seq < evs[1].seq && evs[1].seq < evs[2].seq);
        assert!(evs[0].t_ns <= evs[1].t_ns, "monotonic timestamps");
        crate::set_enabled(false);
        record("t.ghost", 0, 0, "");
        assert_eq!(events().len(), 3, "disabled recorder drops events");
        clear();
    }

    #[test]
    fn json_shape() {
        let _serial = crate::test_lock();
        crate::set_enabled(true);
        clear();
        record("t.json", 7, 1, "k=v");
        let json = to_json();
        assert!(json.contains(r#""name":"t.json""#));
        assert!(json.contains(r#""dur_ns":7"#));
        assert!(json.contains(r#""detail":"k=v""#));
        crate::set_enabled(false);
        clear();
    }
}
