//! The flight recorder: a bounded ring buffer of recent events.
//!
//! Spans, simulator steps, and refresh cycles append small events; the
//! ring keeps the most recent [`CAPACITY`] of them so a dump answers
//! "what was the process doing just now" without unbounded memory. The
//! dump happens on demand (`qrank obs-dump`, [`crate::dump_json`]) or
//! automatically when a thread panics, if [`install_panic_hook`] was
//! called.
//!
//! Events are timestamped with nanoseconds since the first event the
//! process recorded (a monotonic epoch), so cross-thread ordering by
//! `t_ns` is meaningful and wall-clock skew never enters the data.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

/// Maximum retained events; older ones fall off the front.
pub const CAPACITY: usize = 4096;

/// Fixed-capacity ring: until the buffer fills, events append in order;
/// after that each new event overwrites the oldest slot and `next`
/// marks where the oldest retained event now lives. Dumps rotate so the
/// caller always sees oldest-first regardless of wraparound.
#[derive(Debug)]
struct Ring {
    buf: Vec<Event>,
    /// Oldest slot once full == the next slot to overwrite.
    next: usize,
}

impl Ring {
    const fn new() -> Self {
        Ring {
            buf: Vec::new(),
            next: 0,
        }
    }

    fn push(&mut self, event: Event) {
        if self.buf.len() < CAPACITY {
            self.buf.push(event);
        } else {
            self.buf[self.next] = event;
            self.next = (self.next + 1) % CAPACITY;
        }
    }

    /// Copy out in recording order: `next..` holds the oldest events
    /// once the ring has wrapped.
    fn in_order(&self) -> Vec<Event> {
        let (older, newer) = self.buf.split_at(self.next);
        newer.iter().chain(older).cloned().collect()
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
    }
}

/// One flight-recorder entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global sequence number (total order of recording).
    pub seq: u64,
    /// Event name — a span path (`"pipeline.run/pipeline.align"`) or a
    /// subsystem tag (`"sim.step"`).
    pub name: String,
    /// Nanoseconds since the recorder's monotonic epoch.
    pub t_ns: u64,
    /// Duration in nanoseconds (0 for instantaneous events).
    pub dur_ns: u64,
    /// Span nesting depth at record time (0 for non-span events).
    pub depth: u32,
    /// Free-form detail string (e.g. per-step simulator counts).
    pub detail: String,
}

static RING: Mutex<Ring> = Mutex::new(Ring::new());
static SEQ: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Append an event (no-op when observability is disabled).
pub fn record(name: &str, dur_ns: u64, depth: u32, detail: &str) {
    if !crate::enabled() {
        return;
    }
    let t_ns = epoch().elapsed().as_nanos() as u64;
    let event = Event {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        name: name.to_string(),
        t_ns,
        dur_ns,
        depth,
        detail: detail.to_string(),
    };
    RING.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(event);
}

/// Copy out the retained events, oldest first — even after the ring has
/// wrapped (the dump rotates the backing buffer into recording order).
pub fn events() -> Vec<Event> {
    RING.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .in_order()
}

/// Drop every retained event (sequence numbers keep counting).
pub fn clear() {
    RING.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
}

/// Render the retained events as a JSON array, oldest first.
pub fn to_json() -> String {
    use crate::json::{array, Obj};
    array(events().into_iter().map(|e| {
        Obj::new()
            .int("seq", e.seq)
            .str("name", &e.name)
            .int("t_ns", e.t_ns)
            .int("dur_ns", e.dur_ns)
            .int("depth", u64::from(e.depth))
            .str("detail", &e.detail)
            .finish()
    }))
}

/// Install a panic hook (once per process, chaining any existing hook)
/// that dumps the most recent events to stderr — the flight recorder's
/// reason for existing.
pub fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            previous(info);
            let recent = events();
            if recent.is_empty() {
                return;
            }
            eprintln!(
                "--- qrank flight recorder (last {} events) ---",
                recent.len().min(32)
            );
            for e in recent.iter().rev().take(32).rev() {
                eprintln!(
                    "  [{:>12}ns] {} dur={}ns depth={} {}",
                    e.t_ns, e.name, e.dur_ns, e.depth, e.detail
                );
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_bounded() {
        let _serial = crate::test_lock();
        crate::set_enabled(true);
        clear();
        for i in 0..3 {
            record("t.event", i, 0, "d");
        }
        let evs = events();
        assert_eq!(evs.len(), 3);
        assert!(evs[0].seq < evs[1].seq && evs[1].seq < evs[2].seq);
        assert!(evs[0].t_ns <= evs[1].t_ns, "monotonic timestamps");
        crate::set_enabled(false);
        record("t.ghost", 0, 0, "");
        assert_eq!(events().len(), 3, "disabled recorder drops events");
        clear();
    }

    #[test]
    fn wraparound_keeps_ring_order_oldest_first() {
        let _serial = crate::test_lock();
        crate::set_enabled(true);
        clear();
        // Overfill the ring by 5; slots 0..5 are overwritten, so the
        // oldest retained event is physically *after* the newest in the
        // backing buffer. The dump must rotate back to recording order.
        let base = SEQ.load(Ordering::Relaxed);
        for i in 0..(CAPACITY + 5) {
            record("t.wrap", i as u64, 0, "");
        }
        let evs = events();
        assert_eq!(evs.len(), CAPACITY, "bounded after wraparound");
        assert_eq!(evs[0].seq, base + 5, "oldest surviving event first");
        assert_eq!(evs[CAPACITY - 1].seq, base + (CAPACITY + 5 - 1) as u64);
        assert!(
            evs.windows(2).all(|w| w[0].seq + 1 == w[1].seq),
            "strictly increasing seq oldest→newest"
        );
        let json = to_json();
        let first_seq = json.find("\"seq\":").map(|i| &json[i..i + 24]);
        assert!(
            first_seq
                .unwrap()
                .starts_with(&format!("\"seq\":{}", base + 5)),
            "to_json leads with the oldest event, got {first_seq:?}"
        );
        crate::set_enabled(false);
        clear();
    }

    #[test]
    fn json_shape() {
        let _serial = crate::test_lock();
        crate::set_enabled(true);
        clear();
        record("t.json", 7, 1, "k=v");
        let json = to_json();
        assert!(json.contains(r#""name":"t.json""#));
        assert!(json.contains(r#""dur_ns":7"#));
        assert!(json.contains(r#""detail":"k=v""#));
        crate::set_enabled(false);
        clear();
    }
}
