//! Unified observability for the qrank workspace.
//!
//! Everything the simulator, the solvers, the estimation pipeline, the
//! serving front end, and the durability journal (`wal.*` counters and
//! spans) want to say about themselves flows through this crate, in
//! four layers:
//!
//! * **[`registry`]** — a lock-free metrics registry of named counters,
//!   gauges, and power-of-two-bucket latency histograms. Handles are
//!   `Arc`-shared plain atomics, so the record path is a single relaxed
//!   `fetch_add`; the registry lock is touched only at registration and
//!   snapshot time.
//! * **[`mod@span`]** — hierarchical timing spans (`span!("rank.solve")`)
//!   built on a thread-local name stack and monotonic clocks. Each
//!   closed span lands in a `span.<parent/child>` histogram and in the
//!   flight recorder.
//! * **[`recorder`]** — a bounded ring buffer of recent events (the
//!   flight recorder), dumpable on demand or automatically on panic via
//!   [`recorder::install_panic_hook`].
//! * **[`convergence`]** — per-solve PageRank convergence traces:
//!   solver tag, per-iteration residuals, iteration count, node count.
//! * **[`trace`]** — request-scoped tracing: deterministically sampled
//!   per-request stage breakdowns, slowest-K retention per verb, and
//!   per-histogram-bucket tail-latency exemplars.
//! * **[`slo`]** — per-verb rolling windows with multi-window
//!   error-budget burn rates for latency and availability objectives.
//!
//! # Zero cost when disabled
//!
//! Global instrumentation is gated on one process-wide [`enabled`] flag
//! (a relaxed atomic load). When the flag is off — the default — spans
//! skip the clock reads entirely, convergence traces are not cloned, and
//! the recorder is never locked. Crucially, instrumentation *never*
//! participates in any computation: enabling observability cannot change
//! a single bit of simulated histories, PageRank scores, or served
//! responses (asserted by the determinism tests in `qrank-sim`).
//!
//! # Exposition
//!
//! [`registry::RegistrySnapshot::prometheus_text`] renders the
//! Prometheus text format (served by the `metrics` verb of
//! `qrank serve`); [`dump_json`] renders a full JSON snapshot of the
//! registry, convergence traces, and recent events (written by
//! `qrank obs-dump`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod json;
pub mod recorder;
pub mod registry;
pub mod slo;
pub mod span;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};

pub use registry::{global, Counter, Gauge, Histogram, Registry, RegistrySnapshot};
pub use slo::{SloConfig, SloMonitor};
pub use span::SpanGuard;
pub use trace::{ActiveTrace, Trace, TraceConfig, Tracer};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is global instrumentation on? One relaxed load — the only cost the
/// instrumented hot paths pay when observability is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn global instrumentation on or off for the whole process.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enable observability if the `QRANK_OBS` environment variable is set
/// to `1` or `true`, and install the panic-time flight-recorder dump.
/// Call once at process start (the CLI does).
pub fn init_from_env() {
    if matches!(
        std::env::var("QRANK_OBS").as_deref(),
        Ok("1") | Ok("true") | Ok("TRUE")
    ) {
        set_enabled(true);
        recorder::install_panic_hook();
    }
}

/// Reset every global observability sink: zero the global registry's
/// metrics (handles stay valid), clear the flight recorder, and drop
/// recorded convergence traces. Benchmarks call this between runs so
/// each run's `obs` section is self-contained.
pub fn reset() {
    registry::global().reset();
    recorder::clear();
    convergence::clear();
}

/// One JSON document with everything observability knows: the global
/// registry snapshot, all retained convergence traces, and the flight
/// recorder's recent events.
pub fn dump_json() -> String {
    json::Obj::new()
        .raw("registry", &registry::global().snapshot().to_json())
        .raw("convergence", &convergence::to_json())
        .raw("events", &recorder::to_json())
        .finish()
}

/// Unit tests here and in submodules toggle process-global state (the
/// enabled flag, the global registry); they serialize on this lock so
/// the default parallel test runner can't interleave them.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_flag_round_trips() {
        let _serial = test_lock();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn dump_json_is_well_formed_enough() {
        let _serial = test_lock();
        let doc = dump_json();
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains("\"registry\""));
        assert!(doc.contains("\"convergence\""));
        assert!(doc.contains("\"events\""));
    }
}
