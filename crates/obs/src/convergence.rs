//! Solver convergence telemetry.
//!
//! Every PageRank solve (power iteration, sequential Gauss–Seidel,
//! multi-color parallel Gauss–Seidel, and the `solve_auto` dispatcher)
//! reports its per-iteration residuals here, turning convergence curves
//! into first-class data: `qrank obs-dump` and the bench binaries embed
//! them, and `qrank pagerank --trace` writes them out directly.
//!
//! The store is bounded ([`MAX_TRACES`], newest kept) and gated on
//! [`crate::enabled`]: with observability off the residual vector is
//! never cloned and no lock is taken. Recording also bumps two global
//! counters per solve — `rank.solve.<solver>` and
//! `rank.iterations.<solver>` — so cheap aggregates survive even after
//! a trace falls out of the ring.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Maximum retained traces; older solves fall off the front.
pub const MAX_TRACES: usize = 64;

/// One solver run's convergence record.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceTrace {
    /// Which solver produced the trace: `"power"`, `"gauss_seidel"`,
    /// `"colored"`, …
    pub solver: &'static str,
    /// Node count of the solved graph (useful for matching traces to
    /// solves in tests and dumps).
    pub nodes: usize,
    /// Iterations the solver reported.
    pub iterations: usize,
    /// Whether the solver hit its tolerance.
    pub converged: bool,
    /// One residual per iteration, in order.
    pub residuals: Vec<f64>,
}

static TRACES: Mutex<VecDeque<ConvergenceTrace>> = Mutex::new(VecDeque::new());

/// Record one solve. No-op (and no clone of `residuals`) when
/// observability is disabled.
pub fn record_solve(
    solver: &'static str,
    nodes: usize,
    iterations: usize,
    converged: bool,
    residuals: &[f64],
) {
    if !crate::enabled() {
        return;
    }
    let registry = crate::global();
    registry.counter(&format!("rank.solve.{solver}")).inc();
    registry
        .counter(&format!("rank.iterations.{solver}"))
        .add(iterations as u64);
    let trace = ConvergenceTrace {
        solver,
        nodes,
        iterations,
        converged,
        residuals: residuals.to_vec(),
    };
    let mut traces = TRACES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if traces.len() == MAX_TRACES {
        traces.pop_front();
    }
    traces.push_back(trace);
}

/// Copy out the retained traces, oldest first.
pub fn traces() -> Vec<ConvergenceTrace> {
    TRACES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .cloned()
        .collect()
}

/// Drop every retained trace.
pub fn clear() {
    TRACES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
}

/// Render the retained traces as a JSON array, oldest first.
pub fn to_json() -> String {
    use crate::json::{array, num, Obj};
    array(traces().into_iter().map(|t| {
        Obj::new()
            .str("solver", t.solver)
            .int("nodes", t.nodes as u64)
            .int("iterations", t.iterations as u64)
            .bool("converged", t.converged)
            .raw("residuals", &array(t.residuals.iter().map(|&r| num(r))))
            .finish()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_when_enabled_and_bumps_counters() {
        let _serial = crate::test_lock();
        crate::set_enabled(false);
        clear();
        record_solve("t_solver", 10, 3, true, &[0.3, 0.1, 0.01]);
        assert!(traces().is_empty());

        crate::set_enabled(true);
        crate::reset();
        record_solve("t_solver", 10, 3, true, &[0.3, 0.1, 0.01]);
        let ts = traces();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].iterations, 3);
        assert_eq!(ts[0].residuals.len(), ts[0].iterations);
        let snap = crate::global().snapshot();
        assert_eq!(snap.counter("rank.solve.t_solver"), Some(1));
        assert_eq!(snap.counter("rank.iterations.t_solver"), Some(3));
        crate::set_enabled(false);
        clear();
    }

    #[test]
    fn json_carries_residuals() {
        let _serial = crate::test_lock();
        crate::set_enabled(true);
        clear();
        record_solve("t_json", 5, 2, false, &[0.5, 0.25]);
        let json = to_json();
        assert!(json.contains(r#""solver":"t_json""#));
        assert!(json.contains(r#""residuals":[0.5,0.25]"#));
        crate::set_enabled(false);
        clear();
    }
}
