//! Minimal hand-rolled JSON emission.
//!
//! The wire protocol is line-delimited JSON and every payload is flat or
//! one level deep, so a tiny builder beats pulling in a full serializer
//! (the workspace's `serde` is an offline marker shim with no
//! `serde_json` companion).

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental `{...}` object builder.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    fn key(&mut self, key: &str) -> &mut Self {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
        self
    }

    /// Add a string field.
    pub fn str(&mut self, key: &str, val: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(val));
        self.buf.push('"');
        self
    }

    /// Add a numeric field.
    pub fn num(&mut self, key: &str, val: f64) -> &mut Self {
        self.key(key);
        let rendered = num(val);
        self.buf.push_str(&rendered);
        self
    }

    /// Add an integer field (exact, no float formatting).
    pub fn int(&mut self, key: &str, val: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&val.to_string());
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, key: &str, val: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if val { "true" } else { "false" });
        self
    }

    /// Add a field whose value is already-rendered JSON (array, object).
    pub fn raw(&mut self, key: &str, val: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(val);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(&mut self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Render a JSON array from rendered element strings.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_flat_objects() {
        let s = Obj::new()
            .str("name", "a\"b")
            .num("x", 1.5)
            .int("n", 7)
            .bool("ok", true)
            .finish();
        assert_eq!(s, r#"{"name":"a\"b","x":1.5,"n":7,"ok":true}"#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(Obj::new().num("x", f64::NAN).finish(), r#"{"x":null}"#);
    }

    #[test]
    fn arrays_and_raw_nesting() {
        let arr = array(vec!["1".to_string(), "2".to_string()]);
        assert_eq!(arr, "[1,2]");
        assert_eq!(Obj::new().raw("xs", &arr).finish(), r#"{"xs":[1,2]}"#);
        assert_eq!(array(Vec::<String>::new()), "[]");
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\nb\t\u{1}"), "a\\nb\\t\\u0001");
    }
}
