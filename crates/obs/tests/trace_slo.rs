//! Tracing + SLO integration: deterministic sampling under concurrency,
//! bounded retention, and the disabled-gate guarantee — the properties
//! the serve path depends on.

use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;

use qrank_obs::slo::SloConfig;
use qrank_obs::trace::{TraceConfig, Tracer};

/// These tests flip the process-global enabled flag; serialize them so
/// the parallel test runner can't interleave.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn sampling_under_concurrency_is_exactly_one_in_n() {
    let _guard = serial();
    qrank_obs::set_enabled(true);
    const THREADS: u64 = 8;
    const OPS: u64 = 2_500;
    const N: u64 = 10;
    let tracer = Arc::new(Tracer::new(TraceConfig {
        sample_every: N,
        ..TraceConfig::default()
    }));
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let tracer = Arc::clone(&tracer);
        handles.push(thread::spawn(move || {
            let mut sampled = 0u64;
            for _ in 0..OPS {
                if let Some(t) = tracer.begin_sampled("score") {
                    sampled += 1;
                    tracer.finish(t, true);
                }
                tracer.observe("score", 500, true);
            }
            sampled
        }));
    }
    let sampled: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    // The counter is shared and atomic: exactly every N-th increment is
    // sampled, regardless of which thread drew it.
    assert_eq!(tracer.requests(), THREADS * OPS);
    assert_eq!(sampled, THREADS * OPS / N);
    assert_eq!(tracer.sampled(), sampled);
    qrank_obs::set_enabled(false);
}

#[test]
fn retention_stays_bounded_and_slo_sees_full_traffic() {
    let _guard = serial();
    qrank_obs::set_enabled(true);
    let tracer = Tracer::new(TraceConfig {
        sample_every: 1,
        slowest_k: 4,
        recent_capacity: 16,
        exemplar_min_bucket: 0,
        slo: SloConfig {
            latency_objective_ns: 1_000,
            windows_seconds: vec![60, 600],
            ..SloConfig::default()
        },
    });
    for i in 0..500u64 {
        let mut t = tracer.begin_sampled("topk").unwrap();
        t.stage("serialize");
        tracer.finish(t, true);
        // Synthetic latencies: every 100th request misses the objective.
        let latency = if i % 100 == 0 { 50_000 } else { 500 };
        tracer.observe("topk", latency, true);
    }
    assert_eq!(tracer.slowest(Some("topk")).len(), 4, "slowest-K bound");
    assert!(
        tracer.exemplars().len() <= qrank_obs::registry::BUCKETS,
        "at most one exemplar per (verb, bucket)"
    );
    let status = tracer.slo_status();
    let verb = status.iter().find(|v| v.verb == "topk").unwrap();
    let w = &verb.windows[0];
    assert_eq!(w.total, 500, "observe() counts unsampled traffic too");
    assert_eq!(w.total - w.fast, 5);
    // 1% budget, 1% violations → burn ≈ 1.0
    assert!((w.latency_burn - 1.0).abs() < 1e-9, "{}", w.latency_burn);
    let json = tracer.slo_json();
    assert!(json.contains(r#""total":500"#), "{json}");
    assert!(json.contains(r#""latency_burn":"#), "{json}");
    let report = tracer.report_text();
    assert!(report.contains("slowest traces:"), "{report}");
    assert!(report.contains("serialize"), "{report}");
    qrank_obs::set_enabled(false);
}

#[test]
fn disabled_gate_makes_tracing_inert() {
    let _guard = serial();
    qrank_obs::set_enabled(false);
    let tracer = Tracer::new(TraceConfig {
        sample_every: 1,
        ..TraceConfig::default()
    });
    for _ in 0..100 {
        assert!(tracer.begin_sampled("score").is_none());
        tracer.observe("score", 500, true);
    }
    assert!(tracer.begin("refresh").is_none());
    assert_eq!(tracer.requests(), 0, "counter untouched when disabled");
    assert!(tracer.slowest(None).is_empty());
    assert!(tracer.slo_status().is_empty());
    assert_eq!(tracer.slowest_json(None), "[]");
}
