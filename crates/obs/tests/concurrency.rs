//! Registry concurrency: the lock-free claim, checked the blunt way.
//! N threads hammer shared counter and histogram handles; after joining,
//! every total must be exact — relaxed atomics lose no increments.

use std::sync::Arc;
use std::thread;

use qrank_obs::Registry;

const THREADS: u64 = 8;
const OPS: u64 = 10_000;

#[test]
fn counters_and_histograms_are_exact_under_contention() {
    let registry = Arc::new(Registry::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let registry = Arc::clone(&registry);
        handles.push(thread::spawn(move || {
            // Half the threads fetch their own handle (exercises the
            // registration lock under contention), half reuse names.
            let counter = registry.counter("hammer.count");
            let histogram = registry.histogram("hammer.latency");
            for i in 0..OPS {
                counter.inc();
                histogram.record(1 + (t * OPS + i) % 1_000);
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }

    let snap = registry.snapshot();
    assert_eq!(snap.counter("hammer.count"), Some(THREADS * OPS));
    let hist = snap.histogram("hammer.latency").expect("registered");
    assert_eq!(hist.count, THREADS * OPS);
    assert_eq!(hist.buckets.iter().sum::<u64>(), THREADS * OPS);
    // Each thread records the same multiset of values mod 1000, so the
    // exact sum is computable: values are 1 + (k % 1000) over all k in
    // [0, THREADS*OPS).
    let expected_sum: u64 = (0..THREADS * OPS).map(|k| 1 + k % 1_000).sum();
    assert_eq!(hist.sum, expected_sum);
}

#[test]
fn concurrent_registration_yields_one_metric_per_name() {
    let registry = Arc::new(Registry::new());
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let registry = Arc::clone(&registry);
        handles.push(thread::spawn(move || {
            for i in 0..100 {
                registry.counter(&format!("reg.{}", i % 10)).inc();
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counters.len(), 10);
    for (_, v) in &snap.counters {
        assert_eq!(*v, THREADS * 10);
    }
}
