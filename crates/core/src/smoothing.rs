//! Noise handling for low-popularity pages.
//!
//! The paper's discussion section: "One potential problem with the
//! quality metric is that it may be adversely affected by noise for
//! pages with very low popularity ... for low-PageRank pages, we may
//! want to compute the PageRank increase over a longer period than
//! high-PageRank pages in order to reduce the impact of noise." This
//! module implements both that adaptive-window idea and a simple EWMA
//! smoother.

use crate::classify::{classify_trend, Trend};
use crate::estimator::QualityEstimator;
use crate::{CoreError, PopularityTrajectories};

/// Exponentially-weighted moving average smoothing along each
/// trajectory. `alpha = 1` leaves the data untouched; smaller values
/// damp snapshot-to-snapshot jitter before estimation.
pub fn ewma_smooth(traj: &PopularityTrajectories, alpha: f64) -> PopularityTrajectories {
    assert!(
        (0.0..=1.0).contains(&alpha) && alpha > 0.0,
        "alpha must be in (0, 1]"
    );
    let values = traj
        .values
        .iter()
        .map(|v| {
            let mut out = Vec::with_capacity(v.len());
            let mut acc = v[0];
            out.push(acc);
            for &x in &v[1..] {
                acc = alpha * x + (1.0 - alpha) * acc;
                out.push(acc);
            }
            out
        })
        .collect();
    PopularityTrajectories {
        times: traj.times.clone(),
        values,
        pages: traj.pages.clone(),
    }
}

/// The paper's future-work adaptive window: pages whose current
/// popularity is below `threshold` are estimated over the full window
/// (first..last snapshot) to average out noise, while popular pages use
/// only the most recent pair (freshest signal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveWindow {
    /// The Equation 1 constant `C`.
    pub c: f64,
    /// Popularity threshold (metric units) separating "noisy" from
    /// "stable" pages.
    pub threshold: f64,
    /// Trend-classification tolerance.
    pub flat_tolerance: f64,
}

impl Default for AdaptiveWindow {
    fn default() -> Self {
        AdaptiveWindow {
            c: 0.1,
            threshold: 0.5,
            flat_tolerance: 0.0,
        }
    }
}

impl QualityEstimator for AdaptiveWindow {
    fn name(&self) -> &'static str {
        "adaptive-window"
    }

    fn estimate(&self, traj: &PopularityTrajectories) -> Result<Vec<f64>, CoreError> {
        if traj.num_snapshots() < 3 {
            return Err(CoreError::Estimator(format!(
                "AdaptiveWindow needs >= 3 snapshots, got {}",
                traj.num_snapshots()
            )));
        }
        Ok(traj
            .values
            .iter()
            .map(|v| {
                let last = *v.last().expect("non-empty");
                let window: &[f64] = if last < self.threshold {
                    v // full window for noisy low-popularity pages
                } else {
                    &v[v.len() - 2..] // recent pair for stable pages
                };
                let first = window[0];
                match classify_trend(window, self.flat_tolerance) {
                    Trend::Increasing | Trend::Decreasing if first > 0.0 => {
                        self.c * (last - first) / first + last
                    }
                    _ => last,
                }
            })
            .collect())
    }

    fn min_snapshots(&self) -> usize {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrank_graph::PageId;

    fn traj(values: Vec<Vec<f64>>) -> PopularityTrajectories {
        let k = values[0].len();
        PopularityTrajectories {
            times: (0..k).map(|i| i as f64).collect(),
            pages: (0..values.len()).map(|i| PageId(i as u64)).collect(),
            values,
        }
    }

    #[test]
    fn ewma_alpha_one_is_identity() {
        let t = traj(vec![vec![1.0, 3.0, 2.0]]);
        assert_eq!(ewma_smooth(&t, 1.0).values, t.values);
    }

    #[test]
    fn ewma_damps_spikes() {
        let t = traj(vec![vec![1.0, 10.0, 1.0]]);
        let s = ewma_smooth(&t, 0.5);
        assert_eq!(s.values[0][0], 1.0);
        assert!((s.values[0][1] - 5.5).abs() < 1e-12);
        assert!((s.values[0][2] - 3.25).abs() < 1e-12);
        // the spike's amplitude shrank
        let raw_spread = 9.0;
        let smooth_spread = s.values[0].iter().cloned().fold(f64::MIN, f64::max)
            - s.values[0].iter().cloned().fold(f64::MAX, f64::min);
        assert!(smooth_spread < raw_spread);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        let t = traj(vec![vec![1.0, 2.0]]);
        let _ = ewma_smooth(&t, 0.0);
    }

    #[test]
    fn adaptive_window_uses_full_history_for_unpopular_pages() {
        // low-pop page that grew early and stalled: full window sees the
        // growth, recent pair does not
        let t = traj(vec![vec![0.1, 0.2, 0.2]]);
        let est = AdaptiveWindow {
            c: 0.1,
            threshold: 0.5,
            flat_tolerance: 0.0,
        }
        .estimate(&t)
        .unwrap();
        // full window [0.1, 0.2, 0.2]: oscill.. no — nondecreasing with a
        // flat step => Increasing; growth (0.2-0.1)/0.1 = 1
        assert!((est[0] - (0.1 * 1.0 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn adaptive_window_uses_recent_pair_for_popular_pages() {
        // popular page: early history ignored
        let t = traj(vec![vec![1.0, 2.0, 2.0]]);
        let est = AdaptiveWindow {
            c: 0.1,
            threshold: 0.5,
            flat_tolerance: 0.0,
        }
        .estimate(&t)
        .unwrap();
        // recent pair [2.0, 2.0] is flat -> current popularity
        assert_eq!(est[0], 2.0);
    }

    #[test]
    fn adaptive_window_needs_three_snapshots() {
        let t = traj(vec![vec![1.0, 2.0]]);
        assert!(AdaptiveWindow::default().estimate(&t).is_err());
    }

    #[test]
    fn smoothing_then_estimating_composes() {
        use crate::estimator::PaperEstimator;
        let noisy = traj(vec![vec![1.0, 1.6, 1.4, 2.0]]);
        let smooth = ewma_smooth(&noisy, 0.6);
        let est = PaperEstimator::default().estimate(&smooth).unwrap();
        assert!(est[0].is_finite());
        // smoothed trajectory is monotone where the raw one oscillated
        assert!(matches!(
            classify_trend(&smooth.values[0], 0.0),
            Trend::Increasing
        ));
    }
}
