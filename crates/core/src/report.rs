//! Human-readable reports from pipeline results.
//!
//! One formatting path shared by the CLI, the experiment binaries, and
//! downstream users: render a [`PipelineReport`] as plain text (the
//! Figure 5 histogram plus the headline comparison) or as a TSV table of
//! per-page rows.

use crate::evaluation::ErrorHistogram;
use crate::PipelineReport;

/// Render the Figure 5-style comparison as plain text.
pub fn render_summary(report: &PipelineReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "pages: {} common, {} selected (changed beyond threshold)\n",
        report.pages.len(),
        report.num_selected()
    ));
    out.push_str(&format!(
        "mean relative error vs future: estimate {:.4}, current {:.4} (improvement x{:.2})\n",
        report.summary_estimate.mean_error,
        report.summary_current.mean_error,
        report.improvement_factor()
    ));
    out.push_str(&format!(
        "error < 0.1: estimate {:.1}%, current {:.1}%\n",
        100.0 * report.summary_estimate.frac_below_01,
        100.0 * report.summary_current.frac_below_01
    ));
    out.push_str(&format!(
        "error > 1.0: estimate {:.1}%, current {:.1}%\n",
        100.0 * report.summary_estimate.frac_above_1,
        100.0 * report.summary_current.frac_above_1
    ));
    out.push_str("\nerr bin <=   estimate    current\n");
    let hq = &report.summary_estimate.histogram;
    let hp = &report.summary_current.histogram;
    for (i, edge) in ErrorHistogram::bin_labels().iter().enumerate() {
        out.push_str(&format!(
            "{edge:>8.1}   {:>8.1}%  {:>8.1}%\n",
            100.0 * hq.fractions[i],
            100.0 * hp.fractions[i]
        ));
    }
    out
}

/// Render the per-page rows as TSV (header included), in page order.
pub fn render_tsv(report: &PipelineReport) -> String {
    let mut out = String::from(
        "page\ttrend\tselected\tcurrent\testimate\tfuture\terr_estimate\terr_current\n",
    );
    for i in 0..report.pages.len() {
        out.push_str(&format!(
            "{}\t{:?}\t{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\n",
            report.pages[i].0,
            report.trends[i],
            report.selected[i],
            report.current[i],
            report.estimates[i],
            report.future[i],
            report.err_estimate[i],
            report.err_current[i],
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_pipeline, PipelineConfig, PopularityMetric};
    use qrank_graph::{CsrGraph, PageId, Snapshot, SnapshotSeries};

    fn report() -> PipelineReport {
        let pages: Vec<PageId> = (0..4).map(PageId).collect();
        let mut s = SnapshotSeries::new();
        for (i, extra) in [0usize, 1, 2, 3].iter().enumerate() {
            let mut edges = vec![(0u32, 1u32), (1, 0), (2, 0)];
            for k in 0..*extra {
                edges.push((k as u32, 3));
            }
            s.push(
                Snapshot::new(i as f64, CsrGraph::from_edges(4, &edges), pages.clone()).unwrap(),
            )
            .unwrap();
        }
        run_pipeline(
            &s,
            &PipelineConfig {
                metric: PopularityMetric::InDegree,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn summary_contains_key_sections() {
        let text = render_summary(&report());
        assert!(text.contains("mean relative error"));
        assert!(text.contains("err bin <="));
        assert!(text.lines().count() > 12);
    }

    #[test]
    fn tsv_has_one_row_per_page_plus_header() {
        let r = report();
        let tsv = render_tsv(&r);
        assert_eq!(tsv.lines().count(), r.pages.len() + 1);
        assert!(tsv.starts_with("page\ttrend"));
        // the growing page is classified and serialized
        assert!(tsv.contains("Increasing"));
    }
}
