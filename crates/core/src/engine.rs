//! Incremental stage engine: the pipeline as fingerprint-keyed artifacts.
//!
//! [`run_pipeline`](crate::run_pipeline) is a pure function of its
//! snapshot series, and under serving load it is called again and again
//! on windows that overlap almost entirely: a refresh *appends* one
//! snapshot, steady state *slides* the window by one, and only rarely
//! does the common page set actually change. [`PipelineEngine`] makes
//! that overlap explicit. Each pipeline stage produces a typed artifact
//! keyed by a cheap content fingerprint:
//!
//! ```text
//! SnapshotSeries ──align──▶ common pages        key: pages_fingerprint
//!        │                       │
//!        └──restrict──▶ aligned Snapshot        key: (snapshot fp, common fp)
//!                                │
//!                        ──solve──▶ TrajectoryColumn   key: aligned snapshot fp
//!                                │
//!                        ──transpose──▶ PopularityTrajectories
//!                                │
//!                        ──estimate──▶ PipelineReport
//! ```
//!
//! The engine caches the two expensive artifacts (aligned snapshots and
//! per-snapshot popularity columns) between runs. A column is a pure
//! function of the aligned snapshot it was computed from, so a cache hit
//! is *bitwise* the score vector a cold run would compute — the engine's
//! house invariant, proven by the `engine_equivalence` suite, is that
//! for every window shape its report is bit-for-bit identical to a cold
//! [`run_pipeline`](crate::run_pipeline) at every thread budget.
//!
//! Invalidation per window shape (see DESIGN.md for the worked table):
//!
//! * **Append**, common set unchanged — every old column hits; exactly
//!   one new column is solved.
//! * **Window slide**, common set unchanged — the dropped snapshot's
//!   artifacts are evicted, every surviving column hits, one new column
//!   is solved.
//! * **Common-set change** — the common fingerprint changes, so every
//!   restrict key and (via the changed aligned snapshots) every column
//!   key changes: the whole window re-solves. This is precise, not
//!   conservative: a changed common set changes every restricted graph's
//!   content, so nothing cached is reusable.
//!
//! Cache traffic is visible twice over: in [`StageStats`] (returned per
//! run) and, when observability is on, in the
//! `pipeline.stage.{restrict,column}.{hit,miss}` counters and
//! `pipeline.stage.*` spans.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use qrank_graph::{AlignmentTracker, Snapshot, SnapshotSeries};

use crate::estimator::{PaperEstimator, QualityEstimator};
use crate::pipeline::{report_from_trajectories, PipelineConfig, PipelineReport};
use crate::{CoreError, PopularityMetric, PopularityTrajectories};

/// Cache traffic of the most recent [`PipelineEngine::run`], per stage.
///
/// Plain integers, written single-threaded by the engine; the obs
/// counters mirror them when observability is enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Aligned snapshots reused from the restrict cache.
    pub restrict_hits: u64,
    /// Aligned snapshots rebuilt by restricting to the common set.
    pub restrict_misses: u64,
    /// Popularity columns reused from the column cache.
    pub column_hits: u64,
    /// Popularity columns solved (one metric computation each).
    pub column_misses: u64,
}

impl StageStats {
    /// Columns actually solved this run (cache misses).
    pub fn columns_solved(&self) -> u64 {
        self.column_misses
    }

    /// Columns served from cache this run.
    pub fn columns_reused(&self) -> u64 {
        self.column_hits
    }
}

fn bump(name: &'static str) {
    if qrank_obs::enabled() {
        qrank_obs::global().counter(name).inc();
    }
}

/// The estimation pipeline with a memory.
///
/// Construct once with the popularity metric, then call
/// [`run`](PipelineEngine::run) on each refresh with the *whole* current
/// window. The engine recomputes only the artifacts the window change
/// invalidated; everything else — and in steady state that is almost
/// everything — is served from the fingerprint-keyed caches. The caches
/// are pruned after every run to the artifacts that run used, so memory
/// is bounded by one window regardless of how long the engine lives.
///
/// The column cache is only valid for the metric the engine was built
/// with, which is why the metric is fixed at construction.
#[derive(Debug)]
pub struct PipelineEngine {
    metric: PopularityMetric,
    tracker: AlignmentTracker,
    /// `(raw snapshot fingerprint, common-set fingerprint)` → the
    /// snapshot restricted to that common set.
    restrict_cache: HashMap<(u64, u64), Arc<Snapshot>>,
    /// Aligned-snapshot fingerprint → that snapshot's popularity column
    /// (`scores[node]` under [`Self::metric`]).
    column_cache: HashMap<u64, Arc<Vec<f64>>>,
    /// Worker threads for the parallel align stage; `None` follows the
    /// process-global [`qrank_rank::thread_budget`].
    threads: Option<usize>,
    stats: StageStats,
}

impl PipelineEngine {
    /// An engine with empty caches, computing popularity under `metric`.
    pub fn new(metric: PopularityMetric) -> Self {
        PipelineEngine {
            metric,
            tracker: AlignmentTracker::new(),
            restrict_cache: HashMap::new(),
            column_cache: HashMap::new(),
            threads: None,
            stats: StageStats::default(),
        }
    }

    /// The metric this engine's columns are computed under.
    pub fn metric(&self) -> &PopularityMetric {
        &self.metric
    }

    /// Pin the align stage to `threads` worker threads (0 restores the
    /// process-global [`qrank_rank::thread_budget`] default). Purely a
    /// scheduling knob: the align output is bitwise identical at every
    /// budget.
    pub fn set_thread_budget(&mut self, threads: usize) {
        self.threads = (threads > 0).then_some(threads);
    }

    /// Worker threads the align stage will use.
    pub fn thread_budget(&self) -> usize {
        self.threads.unwrap_or_else(qrank_rank::thread_budget)
    }

    /// Cache traffic of the most recent [`run`](PipelineEngine::run).
    pub fn stats(&self) -> StageStats {
        self.stats
    }

    /// Run the pipeline on `series`, reusing every cached artifact the
    /// window change left valid. Equivalent — bitwise — to
    /// [`crate::run_pipeline_with`] on the same series.
    pub fn run(
        &mut self,
        series: &SnapshotSeries,
        estimator: &dyn QualityEstimator,
        min_relative_change: f64,
    ) -> Result<PipelineReport, CoreError> {
        let _span = qrank_obs::span!("pipeline.run");
        self.stats = StageStats::default();
        if series.len() < 3 {
            return Err(CoreError::BadSeries(format!(
                "need >= 3 snapshots (estimation window + held-out future), got {}",
                series.len()
            )));
        }
        let Some((aligned, columns)) = self.stages(series)? else {
            return Err(CoreError::BadSeries(
                "no pages common to all snapshots".into(),
            ));
        };

        let traj = {
            let _s = qrank_obs::span!("pipeline.stage.transpose");
            let pages = aligned[0].pages().to_vec();
            let times: Vec<f64> = aligned.iter().map(|s| s.time).collect();
            let mut values = vec![Vec::with_capacity(times.len()); pages.len()];
            for col in &columns {
                for (p, &v) in col.iter().enumerate() {
                    values[p].push(v);
                }
            }
            PopularityTrajectories {
                times,
                values,
                pages,
            }
        };

        report_from_trajectories(&traj, estimator, min_relative_change)
    }

    /// Prime the caches for `series` without producing a report: run the
    /// align, restrict, and solve stages only. For a serving window that
    /// is still filling (fewer than the three snapshots a report needs),
    /// warming spreads the solve cost over the ingests instead of paying
    /// it all on the first publishable refresh. An empty series or empty
    /// common set is a no-op, not an error.
    pub fn warm(&mut self, series: &SnapshotSeries) -> Result<StageStats, CoreError> {
        let _span = qrank_obs::span!("pipeline.warm");
        self.stats = StageStats::default();
        if !series.is_empty() {
            self.stages(series)?;
        }
        Ok(self.stats)
    }

    /// The align → restrict → solve stages, shared by
    /// [`run`](PipelineEngine::run) and [`warm`](PipelineEngine::warm).
    /// `None` when the series has no common pages (nothing to restrict
    /// to). Prunes both caches to the artifacts this window uses.
    #[allow(clippy::type_complexity)]
    fn stages(
        &mut self,
        series: &SnapshotSeries,
    ) -> Result<Option<(Vec<Arc<Snapshot>>, Vec<Arc<Vec<f64>>>)>, CoreError> {
        let aligned = {
            let _s = qrank_obs::span!("pipeline.stage.align");
            self.tracker.realign(series);
            if self.tracker.common_pages().is_empty() {
                return Ok(None);
            }
            let common_fp = self.tracker.common_fingerprint();
            let common = Arc::clone(self.tracker.common_page_set());

            // Partition the window into cache hits and misses, then
            // restrict all misses in one parallel batch (each
            // restriction is independent; `restrict_snapshots` commits
            // results in input order, so the outcome is identical at
            // every thread budget) and splice them back in window order.
            let mut aligned: Vec<Option<Arc<Snapshot>>> = vec![None; series.len()];
            let mut missed: Vec<&Snapshot> = Vec::new();
            let mut missed_at: Vec<usize> = Vec::new();
            for (i, snap) in series.snapshots().iter().enumerate() {
                let key = (snap.fingerprint(), common_fp);
                if let Some(hit) = self.restrict_cache.get(&key) {
                    self.stats.restrict_hits += 1;
                    bump("pipeline.stage.restrict.hit");
                    aligned[i] = Some(Arc::clone(hit));
                } else {
                    self.stats.restrict_misses += 1;
                    bump("pipeline.stage.restrict.miss");
                    missed.push(snap);
                    missed_at.push(i);
                }
            }
            let built = qrank_graph::restrict_snapshots(&missed, &common, self.thread_budget())?;
            for (i, restricted) in missed_at.into_iter().zip(built) {
                let snap = &series.snapshots()[i];
                let built = Arc::new(restricted);
                self.restrict_cache
                    .insert((snap.fingerprint(), common_fp), Arc::clone(&built));
                aligned[i] = Some(built);
            }
            let aligned: Vec<Arc<Snapshot>> = aligned
                .into_iter()
                .map(|s| s.expect("every window slot is a hit or a committed miss"))
                .collect();
            let used: HashSet<(u64, u64)> = series
                .snapshots()
                .iter()
                .map(|s| (s.fingerprint(), common_fp))
                .collect();
            self.restrict_cache.retain(|k, _| used.contains(k));
            aligned
        };

        let columns: Vec<Arc<Vec<f64>>> = {
            let _s = qrank_obs::span!("pipeline.stage.columns");
            let mut columns = Vec::with_capacity(aligned.len());
            for snap in &aligned {
                let fp = snap.fingerprint();
                if let Some(hit) = self.column_cache.get(&fp) {
                    self.stats.column_hits += 1;
                    bump("pipeline.stage.column.hit");
                    columns.push(Arc::clone(hit));
                } else {
                    self.stats.column_misses += 1;
                    bump("pipeline.stage.column.miss");
                    let col = Arc::new(self.metric.compute(&snap.graph));
                    self.column_cache.insert(fp, Arc::clone(&col));
                    columns.push(col);
                }
            }
            let used: HashSet<u64> = aligned.iter().map(|s| s.fingerprint()).collect();
            self.column_cache.retain(|k, _| used.contains(k));
            columns
        };

        Ok(Some((aligned, columns)))
    }

    /// [`run`](PipelineEngine::run) with a [`PipelineConfig`]'s paper
    /// estimator and report filter. The config's metric is ignored — the
    /// engine always solves under the metric it was constructed with.
    pub fn run_config(
        &mut self,
        series: &SnapshotSeries,
        config: &PipelineConfig,
    ) -> Result<PipelineReport, CoreError> {
        let estimator = PaperEstimator {
            c: config.c,
            flat_tolerance: config.flat_tolerance,
        };
        self.run(series, &estimator, config.min_relative_change)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_pipeline_with;
    use qrank_graph::{CsrGraph, PageId};

    fn snap(time: f64, n: u32, edges: &[(u32, u32)], pages: &[u64]) -> Snapshot {
        Snapshot::new(
            time,
            CsrGraph::from_edges(n as usize, edges),
            pages.iter().map(|&p| PageId(p)).collect(),
        )
        .unwrap()
    }

    fn window(lo: usize, hi: usize) -> SnapshotSeries {
        // An evolving 5-page corpus; snapshot t adds edge (t mod 4, 4).
        let mut s = SnapshotSeries::new();
        for t in lo..hi {
            let mut edges = vec![(0, 1), (1, 2), (2, 3), (3, 0), (4, 0)];
            edges.push((t as u32 % 4, 4));
            s.push(snap(t as f64, 5, &edges, &[10, 11, 12, 13, 14]))
                .unwrap();
        }
        s
    }

    fn assert_reports_equal(a: &PipelineReport, b: &PipelineReport) {
        assert_eq!(a.pages, b.pages);
        assert_eq!(a.estimates, b.estimates);
        assert_eq!(a.current, b.current);
        assert_eq!(a.future, b.future);
        assert_eq!(a.err_estimate, b.err_estimate);
        assert_eq!(a.trajectories.values, b.trajectories.values);
    }

    #[test]
    fn cold_engine_matches_run_pipeline() {
        let series = window(0, 4);
        let metric = PopularityMetric::paper_pagerank();
        let est = PaperEstimator {
            c: 0.1,
            flat_tolerance: 0.0,
        };
        let cold = run_pipeline_with(&series, &metric, &est, 0.05).unwrap();
        let mut engine = PipelineEngine::new(metric);
        let warm = engine.run(&series, &est, 0.05).unwrap();
        assert_reports_equal(&cold, &warm);
        assert_eq!(engine.stats().columns_solved(), 4);
        assert_eq!(engine.stats().columns_reused(), 0);
    }

    #[test]
    fn append_solves_one_column() {
        let metric = PopularityMetric::paper_pagerank();
        let est = PaperEstimator {
            c: 0.1,
            flat_tolerance: 0.0,
        };
        let mut engine = PipelineEngine::new(metric.clone());
        engine.run(&window(0, 3), &est, 0.05).unwrap();
        let grown = window(0, 4);
        let report = engine.run(&grown, &est, 0.05).unwrap();
        assert_eq!(engine.stats().columns_solved(), 1);
        assert_eq!(engine.stats().columns_reused(), 3);
        let cold = run_pipeline_with(&grown, &metric, &est, 0.05).unwrap();
        assert_reports_equal(&cold, &report);
    }

    #[test]
    fn window_slide_solves_one_column() {
        let metric = PopularityMetric::paper_pagerank();
        let est = PaperEstimator {
            c: 0.1,
            flat_tolerance: 0.0,
        };
        let mut engine = PipelineEngine::new(metric.clone());
        engine.run(&window(0, 4), &est, 0.05).unwrap();
        let slid = window(1, 5);
        let report = engine.run(&slid, &est, 0.05).unwrap();
        assert_eq!(engine.stats().columns_solved(), 1);
        assert_eq!(engine.stats().columns_reused(), 3);
        assert_eq!(engine.stats().restrict_hits, 3);
        let cold = run_pipeline_with(&slid, &metric, &est, 0.05).unwrap();
        assert_reports_equal(&cold, &report);
    }

    #[test]
    fn common_set_change_invalidates_all_columns() {
        let metric = PopularityMetric::paper_pagerank();
        let est = PaperEstimator {
            c: 0.1,
            flat_tolerance: 0.0,
        };
        let mut engine = PipelineEngine::new(metric.clone());
        // Window of snapshots all sharing pages 10..14.
        let mut series = window(0, 3);
        engine.run(&series, &est, 0.05).unwrap();
        // Appended snapshot is missing page 14: common set shrinks, so
        // every restricted graph changes and every column must re-solve.
        series
            .push(snap(
                3.0,
                4,
                &[(0, 1), (1, 2), (2, 3), (3, 0)],
                &[10, 11, 12, 13],
            ))
            .unwrap();
        let report = engine.run(&series, &est, 0.05).unwrap();
        assert_eq!(engine.stats().columns_reused(), 0);
        assert_eq!(engine.stats().columns_solved(), 4);
        let cold = run_pipeline_with(&series, &metric, &est, 0.05).unwrap();
        assert_reports_equal(&cold, &report);
    }

    #[test]
    fn identical_rerun_is_all_hits() {
        let metric = PopularityMetric::InDegree;
        let est = PaperEstimator {
            c: 0.1,
            flat_tolerance: 0.0,
        };
        let mut engine = PipelineEngine::new(metric);
        let series = window(0, 4);
        engine.run(&series, &est, 0.05).unwrap();
        engine.run(&series, &est, 0.05).unwrap();
        assert_eq!(engine.stats().columns_solved(), 0);
        assert_eq!(engine.stats().columns_reused(), 4);
        assert_eq!(engine.stats().restrict_misses, 0);
    }

    #[test]
    fn caches_stay_bounded_by_window() {
        let metric = PopularityMetric::InDegree;
        let est = PaperEstimator {
            c: 0.1,
            flat_tolerance: 0.0,
        };
        let mut engine = PipelineEngine::new(metric);
        for lo in 0..6 {
            engine.run(&window(lo, lo + 4), &est, 0.05).unwrap();
            assert!(engine.column_cache.len() <= 4);
            assert!(engine.restrict_cache.len() <= 4);
        }
    }

    #[test]
    fn warming_a_filling_window_prefunds_the_first_run() {
        let est = PaperEstimator {
            c: 0.1,
            flat_tolerance: 0.0,
        };
        let mut engine = PipelineEngine::new(PopularityMetric::paper_pagerank());
        assert_eq!(
            engine.warm(&SnapshotSeries::new()).unwrap(),
            StageStats::default()
        );
        let warmed = engine.warm(&window(0, 2)).unwrap();
        assert_eq!(warmed.columns_solved(), 2);
        engine.run(&window(0, 4), &est, 0.05).unwrap();
        assert_eq!(engine.stats().columns_solved(), 2);
        assert_eq!(engine.stats().columns_reused(), 2);
    }

    #[test]
    fn parallel_align_is_thread_count_independent() {
        let est = PaperEstimator {
            c: 0.1,
            flat_tolerance: 0.0,
        };
        let series = window(0, 5);
        let baseline = {
            let mut engine = PipelineEngine::new(PopularityMetric::paper_pagerank());
            engine.set_thread_budget(1);
            assert_eq!(engine.thread_budget(), 1);
            engine.run(&series, &est, 0.05).unwrap()
        };
        for threads in [2usize, 8] {
            let mut engine = PipelineEngine::new(PopularityMetric::paper_pagerank());
            engine.set_thread_budget(threads);
            let report = engine.run(&series, &est, 0.05).unwrap();
            assert_reports_equal(&baseline, &report);
        }
    }

    #[test]
    fn aligned_window_shares_one_page_universe() {
        let est = PaperEstimator {
            c: 0.1,
            flat_tolerance: 0.0,
        };
        let mut engine = PipelineEngine::new(PopularityMetric::InDegree);
        engine.run(&window(0, 4), &est, 0.05).unwrap();
        // Every cached aligned snapshot holds the tracker's common page
        // universe by pointer, not a private copy.
        let common = engine.tracker.common_page_set();
        assert_eq!(engine.restrict_cache.len(), 4);
        for snap in engine.restrict_cache.values() {
            assert!(Arc::ptr_eq(snap.page_set(), common));
        }
    }

    #[test]
    fn engine_rejects_short_and_disjoint_series() {
        let mut engine = PipelineEngine::new(PopularityMetric::InDegree);
        let cfg = PipelineConfig::default();
        assert!(matches!(
            engine.run_config(&window(0, 2), &cfg),
            Err(CoreError::BadSeries(_))
        ));
        let mut disjoint = SnapshotSeries::new();
        for t in 0..3u64 {
            disjoint.push(snap(t as f64, 1, &[], &[100 + t])).unwrap();
        }
        assert!(matches!(
            engine.run_config(&disjoint, &cfg),
            Err(CoreError::BadSeries(_))
        ));
    }
}
