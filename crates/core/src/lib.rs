//! # qrank-core — page-quality estimation from link-structure evolution
//!
//! The primary contribution of *Page Quality: In Search of an Unbiased
//! Web Ranking* (Cho & Adams, SIGMOD 2005), as a library:
//!
//! * **Definition 1**: the quality `Q(p)` of a page is the probability
//!   that a user who discovers it for the first time likes it enough to
//!   link to it.
//! * **Equation 1 / Theorem 2**: quality can be estimated from snapshots
//!   of the web as
//!
//!   ```text
//!   Q(p) ≈ C · ΔPR(p)/PR(p) + PR(p)
//!   ```
//!
//!   — the relative popularity increase corrects the bias against young
//!   pages, the current popularity covers saturated pages.
//!
//! ## Walkthrough
//!
//! 1. Capture several snapshots of a page corpus
//!    ([`qrank_graph::SnapshotSeries`], typically from `qrank-sim`'s
//!    crawler or real crawl data) and align them to their common pages.
//! 2. Compute a popularity trajectory per page
//!    ([`trajectory::compute_trajectories`]) under a chosen
//!    [`metric::PopularityMetric`] (PageRank, in-degree, HITS authority).
//! 3. Classify each page's trend ([`classify`]) — the paper sets
//!    `I(p,t) = 0` for pages whose PageRank oscillates.
//! 4. Estimate quality ([`estimator`]) and evaluate
//!    ([`evaluation`], [`correlation`]) — against future PageRank as the
//!    paper does, or against ground-truth quality when the corpus comes
//!    from the simulator.
//!
//! The one-call version of all of the above is
//! [`pipeline::run_pipeline`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod correlation;
pub mod engine;
pub mod error;
pub mod estimator;
pub mod evaluation;
pub mod metric;
pub mod pipeline;
pub mod ranking;
pub mod report;
pub mod smoothing;
pub mod trajectory;

pub use classify::{classify_trend, Trend};
pub use engine::{PipelineEngine, StageStats};
pub use error::CoreError;
pub use estimator::{
    CurrentPopularity, DerivativeOnly, LogisticFit, PaperEstimator, QualityEstimator,
};
pub use evaluation::{bootstrap_mean_ci, relative_error, ErrorHistogram, EvalSummary};
pub use metric::PopularityMetric;
pub use pipeline::{
    report_from_trajectories, run_pipeline, run_pipeline_with, PipelineConfig, PipelineReport,
};
pub use ranking::{rank_shift, ranking, RankShift};
pub use trajectory::PopularityTrajectories;
