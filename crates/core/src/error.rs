//! Error type for the estimation pipeline.

use std::fmt;

/// Errors from quality estimation.
#[derive(Debug)]
pub enum CoreError {
    /// The snapshot series does not satisfy a structural requirement
    /// (too few snapshots, not aligned, wrong page counts...).
    BadSeries(String),
    /// An estimator was asked for something it cannot compute.
    Estimator(String),
    /// Propagated graph error.
    Graph(qrank_graph::GraphError),
    /// Propagated model error.
    Model(qrank_model::ModelError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadSeries(msg) => write!(f, "bad snapshot series: {msg}"),
            CoreError::Estimator(msg) => write!(f, "estimator: {msg}"),
            CoreError::Graph(e) => write!(f, "graph: {e}"),
            CoreError::Model(e) => write!(f, "model: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qrank_graph::GraphError> for CoreError {
    fn from(e: qrank_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<qrank_model::ModelError> for CoreError {
    fn from(e: qrank_model::ModelError) -> Self {
        CoreError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::BadSeries("need 3 snapshots".into());
        assert!(e.to_string().contains("3 snapshots"));
        assert!(std::error::Error::source(&e).is_none());

        let e: CoreError = qrank_graph::GraphError::UnknownPage(5).into();
        assert!(e.to_string().contains("5"));
        assert!(std::error::Error::source(&e).is_some());

        let e: CoreError = qrank_model::ModelError::FitFailed("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
