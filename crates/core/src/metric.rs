//! Popularity metrics pluggable into the quality estimator.
//!
//! Section 5 of the paper: "We can use here any measure of popularity.
//! We will use PageRank for the purposes of this paper because of its
//! success as a popularity metric, but we could just as easily
//! substitute the number of links."

use qrank_graph::CsrGraph;
use qrank_rank::{PageRankConfig, ScoreScale};

/// A popularity metric computed on one snapshot's graph.
#[derive(Debug, Clone, PartialEq)]
pub enum PopularityMetric {
    /// PageRank with the given configuration (the paper's choice; use
    /// [`PopularityMetric::paper_pagerank`] for the paper's setup).
    PageRank(PageRankConfig),
    /// Raw in-link count (footnote 4's alternative).
    InDegree,
    /// HITS authority score.
    HitsAuthority,
}

impl PopularityMetric {
    /// The paper's PageRank setup: damping d = 0.15 (paper convention),
    /// per-page scale ("we used 1 as the initial PageRank value").
    pub fn paper_pagerank() -> Self {
        PopularityMetric::PageRank(PageRankConfig::paper_style(0.15))
    }

    /// Compute the metric's score for every node of `g`.
    pub fn compute(&self, g: &CsrGraph) -> Vec<f64> {
        self.compute_warm(g, None)
    }

    /// Like [`PopularityMetric::compute`], optionally warm-starting from
    /// a previous snapshot's scores (only the PageRank metric uses the
    /// hint; the others are direct computations).
    ///
    /// PageRank is solved by [`qrank_rank::solve_auto`]: sequential
    /// Gauss–Seidel on small graphs, the degree-relabeled multi-color
    /// parallel sweep on large ones — whichever is fastest for the graph
    /// size and [`qrank_rank::thread_budget`]. Both the pipeline's cold
    /// path and the serve refresh engine's warm path funnel through this
    /// one call, so warm refreshes stay bitwise-equal to cold recomputes.
    pub fn compute_warm(&self, g: &CsrGraph, warm: Option<&[f64]>) -> Vec<f64> {
        match self {
            PopularityMetric::PageRank(cfg) => qrank_rank::solve_auto(g, cfg, warm).scores,
            PopularityMetric::InDegree => qrank_rank::indegree_scores(g),
            PopularityMetric::HitsAuthority => qrank_rank::hits(g, 1e-10, 200).authorities,
        }
    }

    /// Whether scores of this metric are comparable across snapshots of
    /// the same aligned page set without rescaling. True for all provided
    /// metrics: PageRank is computed at a fixed scale over a fixed node
    /// count, in-degree is absolute, HITS is L2-normalized.
    pub fn cross_snapshot_comparable(&self) -> bool {
        match self {
            PopularityMetric::PageRank(cfg) => {
                // Probability scale sums to 1 and PerPage to N — both
                // fixed given the aligned node count.
                cfg.scale == ScoreScale::Probability || cfg.scale == ScoreScale::PerPage
            }
            PopularityMetric::InDegree | PopularityMetric::HitsAuthority => true,
        }
    }
}

impl Default for PopularityMetric {
    fn default() -> Self {
        PopularityMetric::paper_pagerank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (3, 2)])
    }

    #[test]
    fn pagerank_metric_uses_paper_scale() {
        let m = PopularityMetric::paper_pagerank();
        let scores = m.compute(&g());
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9, "per-page scale has mean 1");
    }

    #[test]
    fn indegree_metric() {
        let m = PopularityMetric::InDegree;
        assert_eq!(m.compute(&g()), vec![1.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn hits_metric_is_normalized() {
        let m = PopularityMetric::HitsAuthority;
        let scores = m.compute(&g());
        let norm: f64 = scores.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn all_metrics_comparable() {
        assert!(PopularityMetric::paper_pagerank().cross_snapshot_comparable());
        assert!(PopularityMetric::InDegree.cross_snapshot_comparable());
        assert!(PopularityMetric::HitsAuthority.cross_snapshot_comparable());
    }

    #[test]
    fn warm_compute_matches_cold() {
        let graph = g();
        let m = PopularityMetric::paper_pagerank();
        let cold = m.compute(&graph);
        let warm = m.compute_warm(&graph, Some(&cold));
        for (a, b) in cold.iter().zip(&warm) {
            assert!((a - b).abs() < 1e-8);
        }
        // non-PageRank metrics ignore the hint
        let d = PopularityMetric::InDegree;
        assert_eq!(d.compute(&graph), d.compute_warm(&graph, Some(&cold)));
    }

    #[test]
    fn default_is_paper_pagerank() {
        assert_eq!(
            PopularityMetric::default(),
            PopularityMetric::paper_pagerank()
        );
    }
}
