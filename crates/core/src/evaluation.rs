//! Evaluation against a reference score — the paper's Section 8.2
//! protocol.
//!
//! "In order to quantify how well Q(p) predicts the 'future' PageRank
//! PR(p,t4) compared to the 'current' PageRank PR(p,t3), we compute the
//! average relative 'error' ... err(p) = |PR(p,t4) − Q(p)| / PR(p,t4)."
//!
//! [`ErrorHistogram`] reproduces Figure 5's binning: ten bins of width
//! 0.1 over `[0, 1]`, with everything above 1 collected into the last
//! bin.

/// The paper's relative error `|reference − estimate| / reference`.
///
/// A zero reference with a zero estimate is a perfect prediction (error
/// 0); a zero reference with a nonzero estimate is infinitely wrong.
pub fn relative_error(reference: f64, estimate: f64) -> f64 {
    if reference == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (reference - estimate).abs() / reference.abs()
    }
}

/// Relative errors for parallel slices.
///
/// # Panics
/// Panics on length mismatch.
pub fn relative_errors(reference: &[f64], estimate: &[f64]) -> Vec<f64> {
    assert_eq!(reference.len(), estimate.len(), "length mismatch");
    reference
        .iter()
        .zip(estimate)
        .map(|(&r, &e)| relative_error(r, e))
        .collect()
}

/// Figure 5's histogram: `bins[i]` counts errors in `(0.1·i, 0.1·(i+1)]`
/// for `i < 9`; `bins[9]` counts everything above 0.9 (including > 1, as
/// the paper does).
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorHistogram {
    /// Fraction of pages per bin (sums to 1 unless empty).
    pub fractions: [f64; 10],
    /// Raw counts per bin.
    pub counts: [usize; 10],
    /// Number of errors summarized.
    pub total: usize,
}

impl ErrorHistogram {
    /// Build from a list of non-negative errors.
    pub fn from_errors(errors: &[f64]) -> Self {
        let mut counts = [0usize; 10];
        for &e in errors {
            debug_assert!(e >= 0.0, "errors must be non-negative");
            let bin = if e.is_finite() {
                ((e * 10.0).floor() as usize).min(9)
            } else {
                9
            };
            counts[bin] += 1;
        }
        let total = errors.len();
        let mut fractions = [0.0; 10];
        if total > 0 {
            for (f, &c) in fractions.iter_mut().zip(&counts) {
                *f = c as f64 / total as f64;
            }
        }
        ErrorHistogram {
            fractions,
            counts,
            total,
        }
    }

    /// Upper edge labels of the bins (0.1, 0.2, ..., 1.0) as in Figure 5.
    pub fn bin_labels() -> [f64; 10] {
        [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    }
}

/// Aggregate evaluation of one estimator against a reference.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSummary {
    /// Mean relative error over finite errors (the paper's headline
    /// number — 0.32 for Q(p), 0.78 for PR(p,t3)).
    pub mean_error: f64,
    /// Median relative error.
    pub median_error: f64,
    /// Fraction of pages with error below 0.1 (paper: 62% vs 46%).
    pub frac_below_01: f64,
    /// Fraction of pages with error above 1.0 (paper: 5% vs >10%).
    pub frac_above_1: f64,
    /// Number of pages evaluated.
    pub count: usize,
    /// Error histogram (Figure 5).
    pub histogram: ErrorHistogram,
}

impl EvalSummary {
    /// Summarize a list of errors. Infinite errors count toward the
    /// `frac_above_1` tail and the last histogram bin but are excluded
    /// from the mean/median (a single infinity would otherwise swamp
    /// them).
    pub fn from_errors(errors: &[f64]) -> Self {
        let count = errors.len();
        let finite: Vec<f64> = errors.iter().copied().filter(|e| e.is_finite()).collect();
        let mean_error = if finite.is_empty() {
            0.0
        } else {
            finite.iter().sum::<f64>() / finite.len() as f64
        };
        let median_error = {
            let mut sorted = finite.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            if sorted.is_empty() {
                0.0
            } else {
                sorted[sorted.len() / 2]
            }
        };
        let below = errors.iter().filter(|&&e| e < 0.1).count();
        let above = errors.iter().filter(|&&e| e > 1.0).count();
        EvalSummary {
            mean_error,
            median_error,
            frac_below_01: if count == 0 {
                0.0
            } else {
                below as f64 / count as f64
            },
            frac_above_1: if count == 0 {
                0.0
            } else {
                above as f64 / count as f64
            },
            count,
            histogram: ErrorHistogram::from_errors(errors),
        }
    }
}

/// Percentile-bootstrap confidence interval for the mean of `values`
/// (finite entries only). Returns `(lo, hi)` at the given confidence
/// level, e.g. `0.95`. Deterministic given `seed`.
///
/// # Panics
/// Panics if `values` has no finite entries, `resamples == 0`, or
/// `level` is outside `(0, 1)`.
pub fn bootstrap_mean_ci(values: &[f64], resamples: usize, level: f64, seed: u64) -> (f64, f64) {
    assert!(resamples >= 1, "need at least one resample");
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0, 1)"
    );
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    assert!(!finite.is_empty(), "no finite values to bootstrap");
    let n = finite.len();
    // xorshift64* — deterministic and dependency-free (rand is not a
    // dependency of qrank-core)
    let mut state = seed.wrapping_mul(2685821657736338717).max(1);
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(2685821657736338717);
        state
    };
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let mut sum = 0.0;
            for _ in 0..n {
                sum += finite[(next() % n as u64) as usize];
            }
            sum / n as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((resamples as f64) * alpha) as usize;
    let hi_idx = (((resamples as f64) * (1.0 - alpha)) as usize).min(resamples - 1);
    (means[lo_idx], means[hi_idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(2.0, 1.0), 0.5);
        assert_eq!(relative_error(2.0, 3.0), 0.5);
        assert_eq!(relative_error(2.0, 2.0), 0.0);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(0.0, 1.0).is_infinite());
    }

    #[test]
    fn relative_errors_parallel() {
        let errs = relative_errors(&[1.0, 2.0], &[1.1, 1.0]);
        assert!((errs[0] - 0.1).abs() < 1e-12);
        assert_eq!(errs[1], 0.5);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn relative_errors_length_check() {
        let _ = relative_errors(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn histogram_binning() {
        let errors = vec![0.05, 0.15, 0.95, 1.5, f64::INFINITY];
        let h = ErrorHistogram::from_errors(&errors);
        assert_eq!(h.counts[0], 1); // 0.05
        assert_eq!(h.counts[1], 1); // 0.15
        assert_eq!(h.counts[9], 3); // 0.95, 1.5, inf
        assert_eq!(h.total, 5);
        let sum: f64 = h.fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bin_edges() {
        // exactly 0.1 lands in the second bin (floor(1.0) = 1)
        let h = ErrorHistogram::from_errors(&[0.1]);
        assert_eq!(h.counts[1], 1);
        // 0.0999... in the first
        let h = ErrorHistogram::from_errors(&[0.09999]);
        assert_eq!(h.counts[0], 1);
    }

    #[test]
    fn histogram_empty() {
        let h = ErrorHistogram::from_errors(&[]);
        assert_eq!(h.total, 0);
        assert!(h.fractions.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn summary_statistics() {
        let errors = vec![0.0, 0.05, 0.2, 0.5, 2.0];
        let s = EvalSummary::from_errors(&errors);
        assert!((s.mean_error - 0.55).abs() < 1e-12);
        assert_eq!(s.median_error, 0.2);
        assert!((s.frac_below_01 - 0.4).abs() < 1e-12);
        assert!((s.frac_above_1 - 0.2).abs() < 1e-12);
        assert_eq!(s.count, 5);
    }

    #[test]
    fn summary_excludes_infinities_from_mean() {
        let errors = vec![0.5, f64::INFINITY];
        let s = EvalSummary::from_errors(&errors);
        assert_eq!(s.mean_error, 0.5);
        assert!((s.frac_above_1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean() {
        let values: Vec<f64> = (0..500).map(|i| (i % 10) as f64 / 10.0).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let (lo, hi) = bootstrap_mean_ci(&values, 2000, 0.95, 7);
        assert!(
            lo < mean && mean < hi,
            "CI [{lo}, {hi}] should bracket {mean}"
        );
        assert!(hi - lo < 0.1, "CI should be tight for n=500: [{lo}, {hi}]");
        // deterministic
        assert_eq!(bootstrap_mean_ci(&values, 2000, 0.95, 7), (lo, hi));
        // wider at higher confidence
        let (lo99, hi99) = bootstrap_mean_ci(&values, 2000, 0.99, 7);
        assert!(hi99 - lo99 >= hi - lo);
    }

    #[test]
    fn bootstrap_ci_skips_infinities() {
        let values = vec![1.0, 1.0, f64::INFINITY, 1.0];
        let (lo, hi) = bootstrap_mean_ci(&values, 100, 0.9, 1);
        assert_eq!((lo, hi), (1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "no finite values")]
    fn bootstrap_ci_rejects_empty() {
        let _ = bootstrap_mean_ci(&[f64::INFINITY], 10, 0.9, 1);
    }

    #[test]
    fn summary_empty() {
        let s = EvalSummary::from_errors(&[]);
        assert_eq!(s.mean_error, 0.0);
        assert_eq!(s.count, 0);
        assert_eq!(s.frac_below_01, 0.0);
    }
}
