//! End-to-end quality-estimation pipeline — Section 8 of the paper in
//! one call.
//!
//! Input: a raw [`SnapshotSeries`] (at least three snapshots; the paper
//! uses four). The pipeline
//!
//! 1. intersects the snapshots to their common pages ("2.7 million pages
//!    were common in all four snapshots"),
//! 2. computes the popularity metric per snapshot,
//! 3. holds out the **last** snapshot as the "future" reference,
//! 4. estimates quality from the earlier snapshots,
//! 5. reports the paper's relative-error comparison between the quality
//!    estimate and the current-popularity baseline, restricted to pages
//!    whose popularity changed by more than the configured threshold
//!    ("we report our results only for the pages whose PageRank values
//!    changed more than 5%").

use qrank_graph::{PageId, SnapshotSeries};

use crate::classify::{classify_all, Trend};
use crate::engine::PipelineEngine;
use crate::estimator::{PaperEstimator, QualityEstimator};
use crate::evaluation::{relative_error, EvalSummary};
use crate::{CoreError, PopularityMetric, PopularityTrajectories};

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Popularity metric (default: the paper's PageRank setup).
    pub metric: PopularityMetric,
    /// Equation 1 constant `C` (paper: 0.1).
    pub c: f64,
    /// Per-step flatness tolerance for trend classification.
    pub flat_tolerance: f64,
    /// Report filter: include only pages whose popularity changed by more
    /// than this relative amount over the estimation window (paper: 0.05).
    pub min_relative_change: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            metric: PopularityMetric::paper_pagerank(),
            c: 0.1,
            flat_tolerance: 0.0,
            min_relative_change: 0.05,
        }
    }
}

/// Per-page and aggregate results.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// External page ids, aligned with all per-page vectors below.
    pub pages: Vec<PageId>,
    /// Trend over the estimation window.
    pub trends: Vec<Trend>,
    /// Quality estimate per page.
    pub estimates: Vec<f64>,
    /// Current popularity (last estimation snapshot — `PR(p,t3)`).
    pub current: Vec<f64>,
    /// Future popularity (held-out snapshot — `PR(p,t4)`).
    pub future: Vec<f64>,
    /// Whether the page passes the minimum-change report filter.
    pub selected: Vec<bool>,
    /// Relative error of the quality estimate vs future, per page.
    pub err_estimate: Vec<f64>,
    /// Relative error of current popularity vs future, per page.
    pub err_current: Vec<f64>,
    /// Aggregate over *selected* pages: the quality estimator.
    pub summary_estimate: EvalSummary,
    /// Aggregate over *selected* pages: the current-popularity baseline.
    pub summary_current: EvalSummary,
    /// The estimation-window trajectories (for downstream analysis).
    pub trajectories: PopularityTrajectories,
}

impl PipelineReport {
    /// Number of selected (reported) pages.
    pub fn num_selected(&self) -> usize {
        self.selected.iter().filter(|&&s| s).count()
    }

    /// The paper's headline ratio: mean error of the baseline divided by
    /// mean error of the estimator (≈ 2.4 in the paper: 0.78 / 0.32).
    ///
    /// Both errors zero (e.g. a perfectly static corpus where estimator
    /// and baseline are exact) means "no improvement either way" — 1.0,
    /// not the INFINITY a perfect estimator earns against an imperfect
    /// baseline.
    pub fn improvement_factor(&self) -> f64 {
        if self.summary_estimate.mean_error == 0.0 {
            return if self.summary_current.mean_error == 0.0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        self.summary_current.mean_error / self.summary_estimate.mean_error
    }
}

/// Run the full pipeline with the paper's estimator.
pub fn run_pipeline(
    series: &SnapshotSeries,
    config: &PipelineConfig,
) -> Result<PipelineReport, CoreError> {
    let estimator = PaperEstimator {
        c: config.c,
        flat_tolerance: config.flat_tolerance,
    };
    run_pipeline_with(
        series,
        &config.metric,
        &estimator,
        config.min_relative_change,
    )
}

/// Run the pipeline with an arbitrary estimator.
///
/// This is one cold pass of the stage engine: a throwaway
/// [`PipelineEngine`] with empty caches, so every stage recomputes. A
/// long-lived engine produces bitwise-identical reports while reusing
/// the artifacts a window change left valid — see [`crate::engine`].
pub fn run_pipeline_with(
    series: &SnapshotSeries,
    metric: &PopularityMetric,
    estimator: &dyn QualityEstimator,
    min_relative_change: f64,
) -> Result<PipelineReport, CoreError> {
    PipelineEngine::new(metric.clone()).run(series, estimator, min_relative_change)
}

/// Build a [`PipelineReport`] from already-computed popularity
/// trajectories (the last snapshot is held out as the future reference).
///
/// This is the deterministic tail of [`run_pipeline_with`]: callers that
/// maintain trajectories incrementally — e.g. a serving layer re-ranking
/// only changed snapshots — get bitwise-identical reports to a
/// from-scratch pipeline run as long as the trajectory values match.
pub fn report_from_trajectories(
    traj: &PopularityTrajectories,
    estimator: &dyn QualityEstimator,
    min_relative_change: f64,
) -> Result<PipelineReport, CoreError> {
    let _span = qrank_obs::span!("pipeline.estimate");
    if traj.num_snapshots() < 2 {
        return Err(CoreError::BadSeries(format!(
            "need >= 2 trajectory snapshots (estimation window + held-out future), got {}",
            traj.num_snapshots()
        )));
    }
    let k = traj.num_snapshots();
    let past = traj.truncated(k - 1)?;
    if past.num_snapshots() < estimator.min_snapshots() {
        return Err(CoreError::Estimator(format!(
            "{} needs {} snapshots in the estimation window, have {}",
            estimator.name(),
            estimator.min_snapshots(),
            past.num_snapshots()
        )));
    }
    // Rows are non-empty by construction after `truncated` validated
    // them against `k`, but malformed hand-built trajectories must come
    // back as an error, not a panic in the refresh worker.
    let row_tail = |values: &[Vec<f64>]| -> Result<Vec<f64>, CoreError> {
        values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                v.last()
                    .copied()
                    .ok_or_else(|| CoreError::BadSeries(format!("empty trajectory row {i}")))
            })
            .collect()
    };
    let future = row_tail(&traj.values)?;
    let current = row_tail(&past.values)?;
    let estimates = estimator.estimate(&past)?;
    let trends = classify_all(&past.values, 0.0);
    let change = past.relative_change();
    let selected: Vec<bool> = change.iter().map(|&c| c > min_relative_change).collect();

    let err_estimate: Vec<f64> = future
        .iter()
        .zip(&estimates)
        .map(|(&f, &e)| relative_error(f, e))
        .collect();
    let err_current: Vec<f64> = future
        .iter()
        .zip(&current)
        .map(|(&f, &c)| relative_error(f, c))
        .collect();

    let sel_errors = |errs: &[f64]| -> Vec<f64> {
        errs.iter()
            .zip(&selected)
            .filter(|&(_, &s)| s)
            .map(|(&e, _)| e)
            .collect()
    };
    let summary_estimate = EvalSummary::from_errors(&sel_errors(&err_estimate));
    let summary_current = EvalSummary::from_errors(&sel_errors(&err_current));

    Ok(PipelineReport {
        pages: past.pages.clone(),
        trends,
        estimates,
        current,
        future,
        selected,
        err_estimate,
        err_current,
        summary_estimate,
        summary_current,
        trajectories: past,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrank_graph::{CsrGraph, Snapshot};

    /// Build a 4-snapshot series where page 1 steadily gains links
    /// (young riser) and page 2 is static.
    fn rising_series() -> SnapshotSeries {
        let pages: Vec<PageId> = (0..6).map(PageId).collect();
        let mut s = SnapshotSeries::new();
        // base edges: 3,4,5 are "fans"; page 2 (node 2) always has 3 fans
        let base = vec![(3u32, 2u32), (4, 2), (5, 2), (2, 0), (0, 2)];
        let riser_links: [&[(u32, u32)]; 4] = [
            &[(3, 1)],
            &[(3, 1), (4, 1)],
            &[(3, 1), (4, 1), (5, 1)],
            &[(3, 1), (4, 1), (5, 1), (0, 1)],
        ];
        for (i, extra) in riser_links.iter().enumerate() {
            let mut edges = base.clone();
            edges.extend_from_slice(extra);
            // everyone links back so nothing is fully dangling
            edges.push((1, 0));
            s.push(
                Snapshot::new(i as f64, CsrGraph::from_edges(6, &edges), pages.clone()).unwrap(),
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn pipeline_runs_and_reports() {
        let series = rising_series();
        let report = run_pipeline(&series, &PipelineConfig::default()).unwrap();
        assert_eq!(report.pages.len(), 6);
        assert_eq!(report.estimates.len(), 6);
        assert!(report.num_selected() >= 1);
        // the riser (node 1) must be classified Increasing and selected
        assert_eq!(report.trends[1], Trend::Increasing);
        assert!(report.selected[1]);
    }

    #[test]
    fn estimator_beats_baseline_on_rising_page() {
        let series = rising_series();
        let report = run_pipeline(&series, &PipelineConfig::default()).unwrap();
        // for the rising page, the estimate should be closer to the
        // future PageRank than the current PageRank is
        assert!(
            report.err_estimate[1] < report.err_current[1],
            "estimate err {} vs current err {}",
            report.err_estimate[1],
            report.err_current[1]
        );
        assert!(report.improvement_factor() > 1.0);
    }

    #[test]
    fn rejects_too_few_snapshots() {
        let pages = vec![PageId(0)];
        let mut s = SnapshotSeries::new();
        for i in 0..2 {
            s.push(Snapshot::new(i as f64, CsrGraph::from_edges(1, &[]), pages.clone()).unwrap())
                .unwrap();
        }
        assert!(matches!(
            run_pipeline(&s, &PipelineConfig::default()),
            Err(CoreError::BadSeries(_))
        ));
    }

    #[test]
    fn rejects_disjoint_snapshots() {
        let mut s = SnapshotSeries::new();
        for i in 0..3u64 {
            s.push(
                Snapshot::new(
                    i as f64,
                    CsrGraph::from_edges(1, &[]),
                    vec![PageId(i)], // different page each time
                )
                .unwrap(),
            )
            .unwrap();
        }
        assert!(matches!(
            run_pipeline(&s, &PipelineConfig::default()),
            Err(CoreError::BadSeries(_))
        ));
    }

    #[test]
    fn indegree_metric_pipeline() {
        let series = rising_series();
        let cfg = PipelineConfig {
            metric: PopularityMetric::InDegree,
            ..Default::default()
        };
        let report = run_pipeline(&series, &cfg).unwrap();
        // in-degree of the riser: 1, 2, 3 over the window; future 4
        assert_eq!(report.current[1], 3.0);
        assert_eq!(report.future[1], 4.0);
        assert_eq!(report.trends[1], Trend::Increasing);
        // estimate = 0.1*(3-1)/1 + 3 = 3.2, closer to 4 than 3 is
        assert!((report.estimates[1] - 3.2).abs() < 1e-12);
    }

    #[test]
    fn custom_estimator_hook() {
        use crate::estimator::CurrentPopularity;
        let series = rising_series();
        let report = run_pipeline_with(
            &series,
            &PopularityMetric::InDegree,
            &CurrentPopularity,
            0.05,
        )
        .unwrap();
        // with the baseline as "estimator", both errors coincide
        for (a, b) in report.err_estimate.iter().zip(&report.err_current) {
            assert_eq!(a, b);
        }
        assert!((report.improvement_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn improvement_factor_is_one_when_both_errors_vanish() {
        // A perfectly static corpus: every page's popularity is constant,
        // so both the estimator and the current-popularity baseline hit
        // the future exactly — 0/0 must read "no improvement" (1.0).
        let pages: Vec<PageId> = (0..3).map(PageId).collect();
        let edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        let mut s = SnapshotSeries::new();
        for i in 0..4 {
            s.push(
                Snapshot::new(i as f64, CsrGraph::from_edges(3, &edges), pages.clone()).unwrap(),
            )
            .unwrap();
        }
        let cfg = PipelineConfig {
            metric: PopularityMetric::InDegree,
            min_relative_change: 0.0, // constant pages have change 0; select none...
            ..Default::default()
        };
        let report = run_pipeline(&s, &cfg).unwrap();
        // no page is selected (change 0 is not > 0), so both summaries
        // are empty with mean_error 0 — the 0/0 case
        assert_eq!(report.num_selected(), 0);
        assert_eq!(report.summary_estimate.mean_error, 0.0);
        assert_eq!(report.summary_current.mean_error, 0.0);
        assert_eq!(report.improvement_factor(), 1.0);
    }

    #[test]
    fn report_from_trajectories_matches_pipeline() {
        use crate::estimator::PaperEstimator;
        use crate::trajectory::compute_trajectories;
        let series = rising_series();
        let cfg = PipelineConfig::default();
        let full = run_pipeline(&series, &cfg).unwrap();
        let aligned = series.aligned_to_common().unwrap();
        let traj = compute_trajectories(&aligned, &cfg.metric).unwrap();
        let est = PaperEstimator {
            c: cfg.c,
            flat_tolerance: cfg.flat_tolerance,
        };
        let tail = report_from_trajectories(&traj, &est, cfg.min_relative_change).unwrap();
        assert_eq!(full.estimates, tail.estimates);
        assert_eq!(full.err_estimate, tail.err_estimate);
        assert_eq!(full.selected, tail.selected);
    }

    #[test]
    fn selection_filter_excludes_static_pages() {
        let series = rising_series();
        let cfg = PipelineConfig {
            metric: PopularityMetric::InDegree,
            ..Default::default()
        };
        let report = run_pipeline(&series, &cfg).unwrap();
        // node 2's in-degree is constant 3 -> not selected
        assert!(!report.selected[2]);
        // stricter threshold shrinks the selection
        let strict = PipelineConfig {
            metric: PopularityMetric::InDegree,
            min_relative_change: 10.0,
            ..Default::default()
        };
        let r2 = run_pipeline(&series, &strict).unwrap();
        assert!(r2.num_selected() <= report.num_selected());
    }
}
