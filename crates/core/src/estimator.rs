//! Quality estimators.
//!
//! All estimators consume a [`PopularityTrajectories`] covering the
//! *estimation window* (the paper uses snapshots t1..t3) and emit one
//! quality estimate per page, in the same units as the popularity metric
//! (so they are directly comparable to a held-out future snapshot's
//! scores, the paper's evaluation protocol).

use crate::classify::{classify_trend, Trend};
use crate::{CoreError, PopularityTrajectories};

/// A pluggable page-quality estimator.
pub trait QualityEstimator {
    /// Short identifier for reports.
    fn name(&self) -> &'static str;

    /// One estimate per page. The trajectory must cover at least
    /// [`QualityEstimator::min_snapshots`] snapshots.
    fn estimate(&self, traj: &PopularityTrajectories) -> Result<Vec<f64>, CoreError>;

    /// Minimum number of snapshots required.
    fn min_snapshots(&self) -> usize {
        2
    }
}

fn require_snapshots(
    traj: &PopularityTrajectories,
    need: usize,
    name: &str,
) -> Result<(), CoreError> {
    if traj.num_snapshots() < need {
        return Err(CoreError::Estimator(format!(
            "{name} needs >= {need} snapshots, got {}",
            traj.num_snapshots()
        )));
    }
    Ok(())
}

/// The paper's Equation 1 estimator:
///
/// ```text
/// Q(p) = C · [PR(p, t_last) − PR(p, t_first)] / PR(p, t_first) + PR(p, t_last)
/// ```
///
/// applied to pages whose popularity moved monotonically; for
/// oscillating pages the paper sets `I(p,t) = 0`, i.e. the estimate
/// falls back to the current popularity. Pages starting at zero
/// popularity also fall back (the relative increase is undefined there).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperEstimator {
    /// The constant `C` weighting the growth term (the paper uses 0.1).
    pub c: f64,
    /// Per-step relative tolerance for the trend classification.
    pub flat_tolerance: f64,
}

impl Default for PaperEstimator {
    fn default() -> Self {
        // "As the constant factor C in Equation 1, we used the value 0.1."
        PaperEstimator {
            c: 0.1,
            flat_tolerance: 0.0,
        }
    }
}

impl QualityEstimator for PaperEstimator {
    fn name(&self) -> &'static str {
        "paper"
    }

    fn estimate(&self, traj: &PopularityTrajectories) -> Result<Vec<f64>, CoreError> {
        require_snapshots(traj, 2, "PaperEstimator")?;
        Ok(traj
            .values
            .iter()
            .map(|v| {
                let first = v[0];
                let last = *v.last().expect("non-empty");
                match classify_trend(v, self.flat_tolerance) {
                    Trend::Increasing | Trend::Decreasing if first > 0.0 => {
                        self.c * (last - first) / first + last
                    }
                    // oscillating (I := 0), flat, or born-at-zero pages
                    _ => last,
                }
            })
            .collect())
    }
}

/// Ablation: only the growth term `C·ΔPR/PR` without the current
/// popularity. Good early in a page's life, useless at saturation
/// (Figure 2's message).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivativeOnly {
    /// Growth-term weight.
    pub c: f64,
    /// Trend-classification tolerance.
    pub flat_tolerance: f64,
}

impl Default for DerivativeOnly {
    fn default() -> Self {
        DerivativeOnly {
            c: 0.1,
            flat_tolerance: 0.0,
        }
    }
}

impl QualityEstimator for DerivativeOnly {
    fn name(&self) -> &'static str {
        "derivative-only"
    }

    fn estimate(&self, traj: &PopularityTrajectories) -> Result<Vec<f64>, CoreError> {
        require_snapshots(traj, 2, "DerivativeOnly")?;
        Ok(traj
            .values
            .iter()
            .map(|v| {
                let first = v[0];
                let last = *v.last().expect("non-empty");
                match classify_trend(v, self.flat_tolerance) {
                    Trend::Increasing | Trend::Decreasing if first > 0.0 => {
                        self.c * (last - first) / first
                    }
                    _ => 0.0,
                }
            })
            .collect())
    }
}

/// Baseline: the current popularity itself (`PR(p, t3)` in the paper's
/// comparison) — what a popularity-ranking search engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CurrentPopularity;

impl QualityEstimator for CurrentPopularity {
    fn name(&self) -> &'static str {
        "current-popularity"
    }

    fn estimate(&self, traj: &PopularityTrajectories) -> Result<Vec<f64>, CoreError> {
        require_snapshots(traj, 1, "CurrentPopularity")?;
        Ok(traj
            .values
            .iter()
            .map(|v| *v.last().expect("non-empty"))
            .collect())
    }

    fn min_snapshots(&self) -> usize {
        1
    }
}

/// Whole-curve estimator: fit the model's logistic popularity curve
/// (Theorem 1) to the trajectory and report the fitted asymptote, which
/// under the model *is* the quality (Corollary 1). Needs at least three
/// snapshots; pages whose trajectory cannot be fit (non-monotone, zero
/// values) fall back to the current popularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticFit {
    /// The model's visit ratio `r/n` in the trajectory's time units,
    /// *after* values are scaled into `(0, 1)` by `q_max`.
    pub visit_ratio: f64,
    /// Upper bound on popularity values in metric units (e.g. for
    /// per-page-scale PageRank something like the largest observed score
    /// times a small margin). Values are divided by this before fitting.
    pub q_max: f64,
    /// Relative spread below which a trajectory counts as saturated.
    pub flat_tolerance: f64,
    /// Trust region: cap the fitted asymptote at `max_boost ×` the
    /// current value. A page observed only in its early exponential
    /// phase pins the growth *rate* but not the asymptote, so an
    /// unconstrained fit can return arbitrarily large quality; the cap
    /// keeps such pages sane while leaving well-determined fits
    /// untouched.
    pub max_boost: f64,
}

impl Default for LogisticFit {
    fn default() -> Self {
        LogisticFit {
            visit_ratio: 1.0,
            q_max: 1.0,
            flat_tolerance: 1e-3,
            max_boost: 10.0,
        }
    }
}

impl QualityEstimator for LogisticFit {
    fn name(&self) -> &'static str {
        "logistic-fit"
    }

    fn estimate(&self, traj: &PopularityTrajectories) -> Result<Vec<f64>, CoreError> {
        require_snapshots(traj, 3, "LogisticFit")?;
        if self.q_max <= 0.0 || self.q_max.is_nan() {
            return Err(CoreError::Estimator(format!(
                "q_max must be positive, got {}",
                self.q_max
            )));
        }
        Ok(traj
            .values
            .iter()
            .map(|v| {
                let last = *v.last().expect("non-empty");
                let samples: Vec<(f64, f64)> = traj
                    .times
                    .iter()
                    .zip(v.iter())
                    .map(|(&t, &x)| (t, x / self.q_max))
                    .filter(|&(_, x)| x > 0.0 && x < 1.0)
                    .collect();
                if samples.len() < 3 {
                    return last;
                }
                match qrank_model::fitting::fit_quality_or_saturated(
                    &samples,
                    self.visit_ratio,
                    self.flat_tolerance,
                ) {
                    Ok(fit) => (fit.quality * self.q_max).min(last * self.max_boost),
                    Err(_) => last,
                }
            })
            .collect())
    }

    fn min_snapshots(&self) -> usize {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrank_graph::PageId;

    fn traj(values: Vec<Vec<f64>>) -> PopularityTrajectories {
        let k = values[0].len();
        PopularityTrajectories {
            times: (0..k).map(|i| i as f64).collect(),
            pages: (0..values.len()).map(|i| PageId(i as u64)).collect(),
            values,
        }
    }

    #[test]
    fn paper_formula_on_growing_page() {
        // the paper's own worked formula: C=0.1,
        // Q = 0.1 * (PR3-PR1)/PR1 + PR3
        let t = traj(vec![vec![1.0, 1.5, 2.0]]);
        let est = PaperEstimator::default().estimate(&t).unwrap();
        assert!((est[0] - (0.1 * 1.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn paper_formula_on_declining_page() {
        let t = traj(vec![vec![2.0, 1.5, 1.0]]);
        let est = PaperEstimator::default().estimate(&t).unwrap();
        assert!((est[0] - (0.1 * (-0.5) + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn oscillating_page_uses_current_popularity() {
        // "we assumed that I(p,t) = 0 ... when their PageRank values
        // oscillate"
        let t = traj(vec![vec![1.0, 2.0, 1.5]]);
        let est = PaperEstimator::default().estimate(&t).unwrap();
        assert_eq!(est[0], 1.5);
    }

    #[test]
    fn flat_page_equals_current_popularity() {
        // "our quality estimator becomes the same as the current
        // PageRank if the PageRank of a page does not change"
        let t = traj(vec![vec![1.2, 1.2, 1.2]]);
        let est = PaperEstimator::default().estimate(&t).unwrap();
        assert_eq!(est[0], 1.2);
    }

    #[test]
    fn zero_start_falls_back() {
        let t = traj(vec![vec![0.0, 0.5, 1.0]]);
        let est = PaperEstimator::default().estimate(&t).unwrap();
        assert_eq!(est[0], 1.0);
    }

    #[test]
    fn estimator_boosts_young_risers_over_static_incumbents() {
        // the whole point of the paper: a young fast-growing page should
        // outrank an equally-popular static page
        let t = traj(vec![
            vec![0.5, 1.0, 2.0], // young riser
            vec![2.0, 2.0, 2.0], // static incumbent at same current PR
        ]);
        let est = PaperEstimator {
            c: 1.0,
            flat_tolerance: 0.0,
        }
        .estimate(&t)
        .unwrap();
        assert!(est[0] > est[1], "riser {} vs incumbent {}", est[0], est[1]);
    }

    #[test]
    fn derivative_only_ignores_current_level() {
        let t = traj(vec![vec![1.0, 1.5, 2.0], vec![10.0, 10.0, 10.0]]);
        let est = DerivativeOnly::default().estimate(&t).unwrap();
        assert!((est[0] - 0.1).abs() < 1e-12);
        assert_eq!(est[1], 0.0);
    }

    #[test]
    fn current_popularity_is_last_column() {
        let t = traj(vec![vec![1.0, 3.0], vec![5.0, 2.0]]);
        let est = CurrentPopularity.estimate(&t).unwrap();
        assert_eq!(est, vec![3.0, 2.0]);
    }

    #[test]
    fn too_few_snapshots_error() {
        let t = traj(vec![vec![1.0]]);
        assert!(PaperEstimator::default().estimate(&t).is_err());
        assert!(CurrentPopularity.estimate(&t).is_ok());
        assert!(LogisticFit::default()
            .estimate(&traj(vec![vec![1.0, 2.0]]))
            .is_err());
    }

    #[test]
    fn logistic_fit_recovers_model_quality() {
        // synthesize an exact logistic trajectory and check the fitted
        // asymptote beats the current value as a quality estimate
        let params = qrank_model::ModelParams::new(0.6, 1e6, 1e6, 1e-3).unwrap();
        let times: Vec<f64> = vec![6.0, 8.0, 10.0, 12.0];
        let values: Vec<f64> = times
            .iter()
            .map(|&t| qrank_model::popularity::popularity(&params, t))
            .collect();
        let t = PopularityTrajectories {
            times,
            values: vec![values.clone()],
            pages: vec![PageId(0)],
        };
        let est = LogisticFit {
            visit_ratio: 1.0,
            q_max: 1.0,
            flat_tolerance: 1e-6,
            max_boost: 10.0,
        }
        .estimate(&t)
        .unwrap();
        assert!((est[0] - 0.6).abs() < 0.01, "fitted {} want 0.6", est[0]);
        assert!(
            est[0] > *values.last().unwrap(),
            "fit should see past current popularity"
        );
    }

    #[test]
    fn logistic_fit_scales_by_q_max() {
        let params = qrank_model::ModelParams::new(0.6, 1e6, 1e6, 1e-3).unwrap();
        let times: Vec<f64> = vec![6.0, 8.0, 10.0, 12.0];
        // metric reports values on a x100 scale
        let values: Vec<f64> = times
            .iter()
            .map(|&t| 100.0 * qrank_model::popularity::popularity(&params, t))
            .collect();
        let t = PopularityTrajectories {
            times,
            values: vec![values],
            pages: vec![PageId(0)],
        };
        let est = LogisticFit {
            visit_ratio: 1.0,
            q_max: 100.0,
            flat_tolerance: 1e-6,
            max_boost: 10.0,
        }
        .estimate(&t)
        .unwrap();
        assert!((est[0] - 60.0).abs() < 1.0, "fitted {} want 60", est[0]);
    }

    #[test]
    fn logistic_fit_falls_back_on_unfittable_pages() {
        let t = traj(vec![vec![0.0, 0.0, 0.0], vec![2.0, 1.0, 2.0]]);
        let est = LogisticFit {
            visit_ratio: 1.0,
            q_max: 3.0,
            flat_tolerance: 1e-3,
            max_boost: 10.0,
        }
        .estimate(&t)
        .unwrap();
        assert_eq!(est[0], 0.0);
        // oscillating page: fit fails or is meaningless; falls back
        assert!(est[1].is_finite());
    }

    #[test]
    fn logistic_fit_rejects_bad_qmax() {
        let t = traj(vec![vec![1.0, 2.0, 3.0]]);
        let bad = LogisticFit {
            visit_ratio: 1.0,
            q_max: 0.0,
            flat_tolerance: 1e-3,
            max_boost: 10.0,
        };
        assert!(bad.estimate(&t).is_err());
    }

    #[test]
    fn logistic_fit_trust_region_caps_runaway_asymptotes() {
        // pure exponential growth (logistic far from saturation): the
        // asymptote is unidentifiable; the cap must bound the estimate
        let values: Vec<f64> = (0..4).map(|k| 0.001 * (1.5f64).powi(k)).collect();
        let t = traj(vec![values.clone()]);
        let est = LogisticFit {
            visit_ratio: 1.0,
            q_max: 1.0,
            flat_tolerance: 1e-6,
            max_boost: 3.0,
        }
        .estimate(&t)
        .unwrap();
        assert!(
            est[0] <= values.last().unwrap() * 3.0 + 1e-12,
            "estimate {}",
            est[0]
        );
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            PaperEstimator::default().name(),
            DerivativeOnly::default().name(),
            CurrentPopularity.name(),
            LogisticFit::default().name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
