//! Ranking construction and rank-movement analysis.
//!
//! The paper's thesis is about *rankings*, not raw scores: "Google puts
//! a page at the top in a search result ... when the page is linked to
//! by the most other pages". This module turns score vectors into
//! rankings and quantifies how a ranking change (e.g. replacing current
//! PageRank with the quality estimate) moves specific pages — the
//! "young high-quality page" cohort above all.

/// Items sorted by descending score; ties broken by ascending index so
/// rankings are deterministic.
pub fn ranking(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("scores must not contain NaN")
            .then(a.cmp(&b))
    });
    order
}

/// `rank[i]` = 0-based position of item `i` under descending-score
/// order.
pub fn ranks(scores: &[f64]) -> Vec<usize> {
    let order = ranking(scores);
    let mut rank = vec![0usize; scores.len()];
    for (pos, &item) in order.iter().enumerate() {
        rank[item] = pos;
    }
    rank
}

/// Comparison of two rankings over the same item set.
#[derive(Debug, Clone, PartialEq)]
pub struct RankShift {
    /// `delta[i]` = rank under `from` minus rank under `to`; positive
    /// means item `i` *improved* (moved toward the top).
    pub delta: Vec<i64>,
    /// Mean absolute rank displacement.
    pub mean_abs_shift: f64,
    /// Jaccard overlap of the top-`k` sets.
    pub top_k_jaccard: f64,
    /// The `k` used for the overlap.
    pub k: usize,
}

/// Compare the ranking induced by `from` with the one induced by `to`.
///
/// # Panics
/// Panics on length mismatch, empty input, or `k` out of range.
pub fn rank_shift(from: &[f64], to: &[f64], k: usize) -> RankShift {
    assert_eq!(from.len(), to.len(), "score vectors must have equal length");
    assert!(!from.is_empty(), "need at least one item");
    assert!(k >= 1 && k <= from.len(), "k must be in 1..=len");
    let rf = ranks(from);
    let rt = ranks(to);
    let delta: Vec<i64> = rf
        .iter()
        .zip(&rt)
        .map(|(&a, &b)| a as i64 - b as i64)
        .collect();
    let mean_abs_shift =
        delta.iter().map(|d| d.unsigned_abs() as f64).sum::<f64>() / delta.len() as f64;
    let top = |r: &[usize]| -> std::collections::HashSet<usize> {
        r.iter()
            .enumerate()
            .filter(|&(_, &pos)| pos < k)
            .map(|(i, _)| i)
            .collect()
    };
    let a = top(&rf);
    let b = top(&rt);
    let inter = a.intersection(&b).count();
    let union = a.union(&b).count();
    RankShift {
        delta,
        mean_abs_shift,
        top_k_jaccard: inter as f64 / union as f64,
        k,
    }
}

/// Mean rank (0 = top) of the given item subset under `scores`.
///
/// # Panics
/// Panics if `members` is empty or contains an out-of-range index.
pub fn mean_rank_of(scores: &[f64], members: &[usize]) -> f64 {
    assert!(!members.is_empty(), "need at least one member");
    let r = ranks(scores);
    members.iter().map(|&i| r[i] as f64).sum::<f64>() / members.len() as f64
}

/// Blend two score vectors after rescaling each to zero mean / unit
/// variance, weighting the second by `weight`. This is the simplest
/// "quality-adjusted ranking" a search engine could deploy: mostly the
/// production popularity signal plus a quality correction.
///
/// Degenerate (constant) inputs contribute zero after standardization.
pub fn blend_scores(primary: &[f64], secondary: &[f64], weight: f64) -> Vec<f64> {
    assert_eq!(primary.len(), secondary.len(), "length mismatch");
    let standardize = |v: &[f64]| -> Vec<f64> {
        let n = v.len() as f64;
        if n == 0.0 {
            return Vec::new();
        }
        let mean = v.iter().sum::<f64>() / n;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        if var == 0.0 {
            return vec![0.0; v.len()];
        }
        let sd = var.sqrt();
        v.iter().map(|x| (x - mean) / sd).collect()
    };
    let p = standardize(primary);
    let s = standardize(secondary);
    p.iter().zip(&s).map(|(a, b)| a + weight * b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_descending_with_stable_ties() {
        let scores = [1.0, 3.0, 2.0, 3.0];
        assert_eq!(ranking(&scores), vec![1, 3, 2, 0]);
        assert_eq!(ranks(&scores), vec![3, 0, 2, 1]);
    }

    #[test]
    fn ranking_empty() {
        assert!(ranking(&[]).is_empty());
        assert!(ranks(&[]).is_empty());
    }

    #[test]
    fn rank_shift_identity() {
        let s = [5.0, 4.0, 3.0, 2.0];
        let shift = rank_shift(&s, &s, 2);
        assert!(shift.delta.iter().all(|&d| d == 0));
        assert_eq!(shift.mean_abs_shift, 0.0);
        assert_eq!(shift.top_k_jaccard, 1.0);
    }

    #[test]
    fn rank_shift_full_reversal() {
        let from = [4.0, 3.0, 2.0, 1.0];
        let to = [1.0, 2.0, 3.0, 4.0];
        let shift = rank_shift(&from, &to, 2);
        // item 0: rank 0 -> 3 = delta -3 (demoted)
        assert_eq!(shift.delta, vec![-3, -1, 1, 3]);
        assert_eq!(shift.mean_abs_shift, 2.0);
        assert_eq!(shift.top_k_jaccard, 0.0);
    }

    #[test]
    fn positive_delta_means_promotion() {
        let from = [1.0, 5.0, 4.0]; // item 0 last
        let to = [9.0, 5.0, 4.0]; // item 0 first
        let shift = rank_shift(&from, &to, 1);
        assert!(shift.delta[0] > 0, "item 0 was promoted");
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn rank_shift_k_bounds() {
        let _ = rank_shift(&[1.0], &[1.0], 2);
    }

    #[test]
    fn mean_rank_of_subset() {
        let scores = [10.0, 9.0, 1.0, 2.0];
        assert_eq!(mean_rank_of(&scores, &[0, 1]), 0.5);
        assert_eq!(mean_rank_of(&scores, &[2]), 3.0);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn mean_rank_requires_members() {
        let _ = mean_rank_of(&[1.0], &[]);
    }

    #[test]
    fn blend_weight_zero_preserves_primary_order() {
        let p = [3.0, 1.0, 2.0];
        let s = [1.0, 3.0, 2.0];
        let b = blend_scores(&p, &s, 0.0);
        assert_eq!(ranking(&b), ranking(&p));
    }

    #[test]
    fn blend_large_weight_follows_secondary() {
        let p = [3.0, 1.0, 2.0];
        let s = [1.0, 3.0, 2.0];
        let b = blend_scores(&p, &s, 100.0);
        assert_eq!(ranking(&b), ranking(&s));
    }

    #[test]
    fn blend_is_scale_invariant() {
        let p = [3.0, 1.0, 2.0];
        let s = [10.0, 30.0, 20.0];
        let a = blend_scores(&p, &s, 0.5);
        let p2: Vec<f64> = p.iter().map(|x| x * 1000.0).collect();
        let b = blend_scores(&p2, &s, 0.5);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn blend_handles_constant_input() {
        let p = [1.0, 1.0, 1.0];
        let s = [1.0, 2.0, 3.0];
        let b = blend_scores(&p, &s, 1.0);
        assert_eq!(ranking(&b), vec![2, 1, 0]);
        let b = blend_scores(&s, &p, 1.0);
        assert_eq!(ranking(&b), vec![2, 1, 0]);
    }
}
