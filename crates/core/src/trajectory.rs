//! Per-page popularity trajectories across an aligned snapshot series.

use qrank_graph::{PageId, SnapshotSeries};

use crate::{CoreError, PopularityMetric};

/// Popularity of every page at every snapshot time.
///
/// Row-major by page: `values[page][k]` is the metric score of `page` at
/// snapshot `k`. Pages are in aligned-series node order, so index `p`
/// here corresponds to node `p` in every snapshot and to `pages[p]`
/// externally.
#[derive(Debug, Clone, PartialEq)]
pub struct PopularityTrajectories {
    /// Snapshot capture times.
    pub times: Vec<f64>,
    /// `values[page][snapshot]`.
    pub values: Vec<Vec<f64>>,
    /// External identity of each page row.
    pub pages: Vec<PageId>,
}

impl PopularityTrajectories {
    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of snapshots.
    pub fn num_snapshots(&self) -> usize {
        self.times.len()
    }

    /// The trajectory of one page as `(time, value)` pairs.
    pub fn series(&self, page: usize) -> Vec<(f64, f64)> {
        self.times
            .iter()
            .copied()
            .zip(self.values[page].iter().copied())
            .collect()
    }

    /// Restrict to the first `k` snapshots (e.g. hold out the last one as
    /// the "future" in the paper's evaluation).
    ///
    /// Errors on an out-of-range `k` or a ragged trajectory (a row with
    /// fewer than `k` values) — these reach the serving refresh path, so
    /// malformed input must degrade to an error reply, not a panic.
    pub fn truncated(&self, k: usize) -> Result<PopularityTrajectories, CoreError> {
        if k < 1 || k > self.num_snapshots() {
            return Err(CoreError::BadSeries(format!(
                "bad truncation length {k} for {} snapshots",
                self.num_snapshots()
            )));
        }
        if let Some(short) = self.values.iter().position(|v| v.len() < k) {
            return Err(CoreError::BadSeries(format!(
                "trajectory row {short} has {} values, need {k}",
                self.values[short].len()
            )));
        }
        Ok(PopularityTrajectories {
            times: self.times[..k].to_vec(),
            values: self.values.iter().map(|v| v[..k].to_vec()).collect(),
            pages: self.pages.clone(),
        })
    }

    /// Relative change `|v_last − v_first| / v_first` per page; infinite
    /// when the page started at zero and grew. Used for the paper's
    /// "changed more than 5%" report filter. Empty rows read as "no
    /// change".
    pub fn relative_change(&self) -> Vec<f64> {
        self.values
            .iter()
            .map(|v| {
                let (Some(&first), Some(&last)) = (v.first(), v.last()) else {
                    return 0.0;
                };
                if first == 0.0 {
                    if last == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (last - first).abs() / first
                }
            })
            .collect()
    }
}

/// Compute trajectories for an *aligned* snapshot series under `metric`.
///
/// Errors when the series is empty or not aligned (call
/// [`SnapshotSeries::aligned_to_common`] first).
pub fn compute_trajectories(
    series: &SnapshotSeries,
    metric: &PopularityMetric,
) -> Result<PopularityTrajectories, CoreError> {
    if series.is_empty() {
        return Err(CoreError::BadSeries("empty snapshot series".into()));
    }
    if !series.is_aligned() {
        return Err(CoreError::BadSeries(
            "series is not aligned; call aligned_to_common() first".into(),
        ));
    }
    let pages = series.snapshots()[0].pages().to_vec();
    let times = series.times();
    let n = pages.len();
    let mut values = vec![Vec::with_capacity(times.len()); n];
    // Every column is solved from the metric's canonical start, never
    // warm-started from a neighboring snapshot: each column is then a
    // pure function of its own snapshot, which is what lets the stage
    // engine (`qrank_core::engine`) reuse cached columns across window
    // slides while staying bitwise-identical to this cold path.
    for snap in series.snapshots() {
        let scores = metric.compute(&snap.graph);
        debug_assert_eq!(scores.len(), n);
        for (p, &v) in scores.iter().enumerate() {
            values[p].push(v);
        }
    }
    Ok(PopularityTrajectories {
        times,
        values,
        pages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrank_graph::{CsrGraph, Snapshot};

    fn series() -> SnapshotSeries {
        let pages = vec![PageId(1), PageId(2), PageId(3)];
        let mut s = SnapshotSeries::new();
        s.push(Snapshot::new(0.0, CsrGraph::from_edges(3, &[(0, 1)]), pages.clone()).unwrap())
            .unwrap();
        s.push(
            Snapshot::new(
                1.0,
                CsrGraph::from_edges(3, &[(0, 1), (2, 1)]),
                pages.clone(),
            )
            .unwrap(),
        )
        .unwrap();
        s.push(
            Snapshot::new(
                2.0,
                CsrGraph::from_edges(3, &[(0, 1), (2, 1), (0, 2), (1, 0)]),
                pages,
            )
            .unwrap(),
        )
        .unwrap();
        s
    }

    #[test]
    fn indegree_trajectories() {
        let t = compute_trajectories(&series(), &PopularityMetric::InDegree).unwrap();
        assert_eq!(t.num_pages(), 3);
        assert_eq!(t.num_snapshots(), 3);
        assert_eq!(t.times, vec![0.0, 1.0, 2.0]);
        // page 2 (node 1) gains links: 1, 2, 2
        assert_eq!(t.values[1], vec![1.0, 2.0, 2.0]);
        // page 3 (node 2): 0, 0, 1
        assert_eq!(t.values[2], vec![0.0, 0.0, 1.0]);
        assert_eq!(t.series(1), vec![(0.0, 1.0), (1.0, 2.0), (2.0, 2.0)]);
    }

    #[test]
    fn pagerank_trajectories_move_with_links() {
        let t = compute_trajectories(&series(), &PopularityMetric::paper_pagerank()).unwrap();
        // node 1's PageRank should rise as it gains a second in-link
        assert!(t.values[1][1] > t.values[1][0]);
    }

    #[test]
    fn truncation_holds_out_future() {
        let t = compute_trajectories(&series(), &PopularityMetric::InDegree).unwrap();
        let past = t.truncated(2).unwrap();
        assert_eq!(past.num_snapshots(), 2);
        assert_eq!(past.values[1], vec![1.0, 2.0]);
        assert_eq!(past.pages, t.pages);
    }

    #[test]
    fn truncation_bounds_and_ragged_rows_error() {
        let t = compute_trajectories(&series(), &PopularityMetric::InDegree).unwrap();
        assert!(matches!(t.truncated(9), Err(CoreError::BadSeries(_))));
        assert!(matches!(t.truncated(0), Err(CoreError::BadSeries(_))));
        let ragged = PopularityTrajectories {
            times: vec![0.0, 1.0],
            values: vec![vec![1.0, 2.0], vec![1.0]],
            pages: vec![PageId(1), PageId(2)],
        };
        assert!(matches!(ragged.truncated(2), Err(CoreError::BadSeries(_))));
        assert!(ragged.truncated(1).is_ok());
    }

    #[test]
    fn relative_change_handles_zero_start() {
        let t = compute_trajectories(&series(), &PopularityMetric::InDegree).unwrap();
        let rc = t.relative_change();
        assert!(rc[0].is_infinite()); // node 0 in-degree: 0 -> 1
        assert!((rc[1] - 1.0).abs() < 1e-12); // node 1: 1 -> 2
        assert!(rc[2].is_infinite()); // node 2: 0 -> 1
    }

    #[test]
    fn rejects_empty_and_misaligned() {
        let empty = SnapshotSeries::new();
        assert!(matches!(
            compute_trajectories(&empty, &PopularityMetric::InDegree),
            Err(CoreError::BadSeries(_))
        ));
        let mut misaligned = SnapshotSeries::new();
        misaligned
            .push(Snapshot::new(0.0, CsrGraph::from_edges(1, &[]), vec![PageId(1)]).unwrap())
            .unwrap();
        misaligned
            .push(Snapshot::new(1.0, CsrGraph::from_edges(1, &[]), vec![PageId(2)]).unwrap())
            .unwrap();
        assert!(matches!(
            compute_trajectories(&misaligned, &PopularityMetric::InDegree),
            Err(CoreError::BadSeries(_))
        ));
    }
}
