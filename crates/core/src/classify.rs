//! Trend classification of popularity trajectories.
//!
//! Section 8.2 of the paper: "we first identified the set of pages whose
//! PageRank values had consistently increased (or decreased) over the
//! first three snapshots" and, from the discussion section, "for these
//! \[oscillating\] pages, we assumed that I(p,t) = 0 for our quality
//! estimator." This module is that classification step.

/// The trend of a page's popularity across a snapshot window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trend {
    /// Strictly increasing at every step.
    Increasing,
    /// Strictly decreasing at every step (the paper's anomaly pages,
    /// explained by the forgetting extension).
    Decreasing,
    /// Neither monotone direction — PageRank "went up from t1 to t2 and
    /// down again from t2 to t3" (or vice versa).
    Oscillating,
    /// No change beyond `flat_tolerance` anywhere — the majority of
    /// pages in the paper's dataset.
    Flat,
}

/// Classify a trajectory. `flat_tolerance` is the relative change below
/// which a step counts as "no movement" (the paper reports results for
/// pages whose PageRank changed more than 5%, i.e. tolerance 0.05 over
/// the whole window; per-step we apply it to each consecutive pair).
///
/// # Panics
/// Panics on a trajectory with fewer than 2 points.
pub fn classify_trend(values: &[f64], flat_tolerance: f64) -> Trend {
    assert!(values.len() >= 2, "need at least two snapshots to classify");
    assert!(flat_tolerance >= 0.0, "tolerance must be non-negative");
    let mut any_up = false;
    let mut any_down = false;
    for w in values.windows(2) {
        let (a, b) = (w[0], w[1]);
        let scale = a.abs().max(b.abs());
        if scale == 0.0 {
            continue;
        }
        let rel = (b - a) / scale;
        if rel > flat_tolerance {
            any_up = true;
        } else if rel < -flat_tolerance {
            any_down = true;
        }
    }
    match (any_up, any_down) {
        (false, false) => Trend::Flat,
        (true, false) => Trend::Increasing,
        (false, true) => Trend::Decreasing,
        (true, true) => Trend::Oscillating,
    }
}

/// Classify every row of a trajectory matrix.
pub fn classify_all(values: &[Vec<f64>], flat_tolerance: f64) -> Vec<Trend> {
    values
        .iter()
        .map(|v| classify_trend(v, flat_tolerance))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_up() {
        assert_eq!(classify_trend(&[1.0, 1.2, 1.5], 0.01), Trend::Increasing);
    }

    #[test]
    fn monotone_down() {
        assert_eq!(classify_trend(&[1.5, 1.2, 1.0], 0.01), Trend::Decreasing);
    }

    #[test]
    fn oscillation() {
        assert_eq!(classify_trend(&[1.0, 1.5, 1.1], 0.01), Trend::Oscillating);
        assert_eq!(classify_trend(&[1.5, 1.0, 1.4], 0.01), Trend::Oscillating);
    }

    #[test]
    fn flat_within_tolerance() {
        assert_eq!(classify_trend(&[1.0, 1.01, 0.99], 0.05), Trend::Flat);
        assert_eq!(classify_trend(&[0.0, 0.0, 0.0], 0.05), Trend::Flat);
    }

    #[test]
    fn tolerance_zero_is_strict() {
        assert_eq!(classify_trend(&[1.0, 1.0 + 1e-12], 0.0), Trend::Increasing);
        assert_eq!(classify_trend(&[1.0, 1.0], 0.0), Trend::Flat);
    }

    #[test]
    fn small_dip_within_tolerance_still_increasing() {
        // net growth with one sub-tolerance dip counts as increasing
        assert_eq!(
            classify_trend(&[1.0, 1.3, 1.29, 1.6], 0.05),
            Trend::Increasing
        );
    }

    #[test]
    fn growth_from_zero() {
        // 0 -> x is a relative change of 1.0 under the max-scale rule
        assert_eq!(classify_trend(&[0.0, 0.5], 0.05), Trend::Increasing);
        assert_eq!(classify_trend(&[0.5, 0.0], 0.05), Trend::Decreasing);
    }

    #[test]
    fn two_points_suffice() {
        assert_eq!(classify_trend(&[1.0, 2.0], 0.05), Trend::Increasing);
    }

    #[test]
    #[should_panic(expected = "two snapshots")]
    fn rejects_single_point() {
        let _ = classify_trend(&[1.0], 0.05);
    }

    #[test]
    fn classify_all_maps_rows() {
        let rows = vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(
            classify_all(&rows, 0.01),
            vec![Trend::Increasing, Trend::Decreasing, Trend::Flat]
        );
    }
}
