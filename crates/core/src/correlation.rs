//! Rank-correlation and ranking-quality measures.
//!
//! The paper evaluates by relative error against future PageRank; when
//! the corpus comes from the simulator we additionally know the true
//! quality of every page, so we can ask the question the paper could
//! not: *how well does each estimator rank pages by their actual
//! quality?* Spearman's ρ, Kendall's τ (O(n log n)), and precision@k
//! answer it.

/// Average ranks with midpoint tie handling.
fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("no NaN in rank input")
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation of two equally-long slices; 0 if either side is
/// constant or the slices are shorter than 2.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Spearman rank correlation (Pearson on midpoint-tied ranks).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    pearson(&ranks(x), &ranks(y))
}

/// Kendall's τ-b via merge-sort inversion counting, O(n log n).
pub fn kendall_tau(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    // sort by x, then count inversions in y; ties need care (tau-b)
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        x[a].partial_cmp(&x[b])
            .expect("no NaN")
            .then(y[a].partial_cmp(&y[b]).expect("no NaN"))
    });
    let sorted_y: Vec<f64> = order.iter().map(|&i| y[i]).collect();

    // tie counts
    let tie_pairs = |vals: &[f64]| -> f64 {
        let mut sorted: Vec<f64> = vals.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mut t = 0.0;
        let mut i = 0;
        while i < sorted.len() {
            let mut j = i;
            while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
                j += 1;
            }
            let c = (j - i + 1) as f64;
            t += c * (c - 1.0) / 2.0;
            i = j + 1;
        }
        t
    };
    let tx = tie_pairs(x);
    let ty = tie_pairs(y);
    // joint ties (pairs tied in both)
    let txy = {
        let mut pairs: Vec<(f64, f64)> = x.iter().copied().zip(y.iter().copied()).collect();
        pairs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mut t = 0.0;
        let mut i = 0;
        while i < pairs.len() {
            let mut j = i;
            while j + 1 < pairs.len() && pairs[j + 1] == pairs[i] {
                j += 1;
            }
            let c = (j - i + 1) as f64;
            t += c * (c - 1.0) / 2.0;
            i = j + 1;
        }
        t
    };

    let total = n as f64 * (n as f64 - 1.0) / 2.0;
    let discordant = count_inversions(&sorted_y);
    // concordant + discordant + ties = total
    let concordant = total - discordant as f64 - tx - ty + txy;
    let denom = ((total - tx) * (total - ty)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (concordant - discordant as f64) / denom
}

/// Count strict inversions (pairs `i < j` with `v[i] > v[j]`) by merge
/// sort. Equal elements are not inversions.
fn count_inversions(v: &[f64]) -> u64 {
    fn merge_count(v: &mut Vec<f64>, buf: &mut Vec<f64>, lo: usize, hi: usize) -> u64 {
        if hi - lo <= 1 {
            return 0;
        }
        let mid = (lo + hi) / 2;
        let mut inv = merge_count(v, buf, lo, mid) + merge_count(v, buf, mid, hi);
        buf.clear();
        let (mut i, mut j) = (lo, mid);
        while i < mid && j < hi {
            if v[i] <= v[j] {
                buf.push(v[i]);
                i += 1;
            } else {
                inv += (mid - i) as u64;
                buf.push(v[j]);
                j += 1;
            }
        }
        buf.extend_from_slice(&v[i..mid]);
        buf.extend_from_slice(&v[j..hi]);
        v[lo..hi].copy_from_slice(buf);
        inv
    }
    let mut work = v.to_vec();
    let mut buf = Vec::with_capacity(v.len());
    let n = work.len();
    merge_count(&mut work, &mut buf, 0, n)
}

/// Precision@k: fraction of the `k` highest-scored items (by `scores`)
/// that are among the `k` items with the highest `truth`.
///
/// # Panics
/// Panics if `k == 0` or `k > len`.
pub fn precision_at_k(scores: &[f64], truth: &[f64], k: usize) -> f64 {
    assert_eq!(scores.len(), truth.len(), "length mismatch");
    assert!(k >= 1 && k <= scores.len(), "k must be in 1..=len");
    let top = |vals: &[f64]| -> std::collections::HashSet<usize> {
        let mut idx: Vec<usize> = (0..vals.len()).collect();
        idx.sort_by(|&a, &b| {
            vals[b]
                .partial_cmp(&vals[a])
                .expect("no NaN")
                .then(a.cmp(&b))
        });
        idx.into_iter().take(k).collect()
    };
    let hits = top(scores).intersection(&top(truth)).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&x, &[2.0, 4.0, 6.0, 8.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &[8.0, 6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate() {
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn spearman_is_rank_based() {
        // monotone but nonlinear: spearman 1, pearson < 1
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y) < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.5, 2.5, 4.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_perfect_orders() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((kendall_tau(&x, &[10.0, 20.0, 30.0, 40.0]) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&x, &[40.0, 30.0, 20.0, 10.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_single_swap() {
        // one discordant pair out of six: tau = (5-1)/6
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 2.0, 4.0, 3.0];
        assert!((kendall_tau(&x, &y) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_matches_naive_on_random_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(61);
        let n = 120;
        let x: Vec<f64> = (0..n)
            .map(|_| (rng.random::<f64>() * 10.0).round())
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|_| (rng.random::<f64>() * 10.0).round())
            .collect();
        // naive tau-b
        let (mut c, mut d, mut tx, mut ty) = (0f64, 0f64, 0f64, 0f64);
        // NB: not f64::signum — that returns 1.0 for +0.0, which would
        // silently misclassify ties as concordant pairs.
        let sign = |d: f64| {
            if d > 0.0 {
                1.0
            } else if d < 0.0 {
                -1.0
            } else {
                0.0
            }
        };
        for i in 0..n {
            for j in (i + 1)..n {
                let sx = sign(x[i] - x[j]);
                let sy = sign(y[i] - y[j]);
                if sx == 0.0 && sy == 0.0 {
                    // joint tie: excluded from both
                } else if sx == 0.0 {
                    tx += 1.0;
                } else if sy == 0.0 {
                    ty += 1.0;
                } else if sx == sy {
                    c += 1.0;
                } else {
                    d += 1.0;
                }
            }
        }
        let naive = (c - d) / (((c + d + tx) * (c + d + ty)).sqrt());
        let fast = kendall_tau(&x, &y);
        assert!((fast - naive).abs() < 1e-9, "fast {fast} vs naive {naive}");
    }

    #[test]
    fn kendall_degenerate() {
        assert_eq!(kendall_tau(&[1.0], &[1.0]), 0.0);
        assert_eq!(kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn inversion_counting() {
        assert_eq!(count_inversions(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(count_inversions(&[3.0, 2.0, 1.0]), 3);
        assert_eq!(count_inversions(&[2.0, 1.0, 3.0]), 1);
        assert_eq!(count_inversions(&[1.0, 1.0]), 0);
        assert_eq!(count_inversions(&[]), 0);
    }

    #[test]
    fn precision_at_k_basics() {
        let truth = [0.9, 0.8, 0.1, 0.2];
        assert_eq!(precision_at_k(&[10.0, 9.0, 1.0, 2.0], &truth, 2), 1.0);
        assert_eq!(precision_at_k(&[1.0, 2.0, 10.0, 9.0], &truth, 2), 0.0);
        assert_eq!(precision_at_k(&[10.0, 1.0, 9.0, 2.0], &truth, 2), 0.5);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn precision_rejects_bad_k() {
        let _ = precision_at_k(&[1.0], &[1.0], 2);
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    #[test]
    fn inversions_match_naive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let v: Vec<f64> = (0..57)
                .map(|_| (rng.random::<f64>() * 8.0).round())
                .collect();
            let naive = (0..v.len())
                .flat_map(|i| ((i + 1)..v.len()).map(move |j| (i, j)))
                .filter(|&(i, j)| v[i] > v[j])
                .count() as u64;
            assert_eq!(count_inversions(&v), naive, "v={v:?}");
        }
    }
}
