//! House invariant of the stage engine: for **every** window shape —
//! append, window slide, common-set change — a warm [`PipelineEngine`]'s
//! report is *bitwise* identical to a cold `run_pipeline_with` on the
//! same series, at every thread budget the determinism suite covers.
//! Both paths solve through `qrank_rank::solve_auto`, so the invariant
//! also proves cache reuse never leaks a value the cold dispatch would
//! not have produced.
//!
//! The thread budget is process-global state, so the whole matrix lives
//! in one `#[test]` (parallel test threads would race on it).

use qrank_core::{
    run_pipeline_with, PaperEstimator, PipelineEngine, PipelineReport, PopularityMetric,
};
use qrank_graph::{CsrGraph, PageId, Snapshot, SnapshotSeries};

/// Deterministic evolving corpus. Pages 0..40 always exist; page 40 is
/// born at t = 3 and page 41 at t = 5, so sliding windows across those
/// times change the common page set. Edges churn with `t` via an LCG.
fn master_snapshot(t: u64) -> Snapshot {
    let n: u64 = 40 + u64::from(t >= 3) + u64::from(t >= 5);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // a stable backbone so the graph never falls apart
    for u in 0..n as u32 {
        edges.push((u, (u + 1) % n as u32));
    }
    // churning extra links, deterministic in t
    let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t + 1);
    for _ in 0..120 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = ((state >> 33) % n) as u32;
        let v = ((state >> 13) % n) as u32;
        if u != v {
            edges.push((u, v));
        }
    }
    let pages: Vec<PageId> = (0..n).map(PageId).collect();
    Snapshot::new(t as f64, CsrGraph::from_edges(n as usize, &edges), pages).unwrap()
}

fn window(lo: u64, hi: u64) -> SnapshotSeries {
    let mut s = SnapshotSeries::new();
    for t in lo..hi {
        s.push(master_snapshot(t)).unwrap();
    }
    s
}

fn assert_bitwise_equal(warm: &PipelineReport, cold: &PipelineReport, what: &str) {
    assert_eq!(warm.pages, cold.pages, "{what}: pages");
    assert_eq!(warm.trends, cold.trends, "{what}: trends");
    assert_eq!(warm.estimates, cold.estimates, "{what}: estimates");
    assert_eq!(warm.current, cold.current, "{what}: current");
    assert_eq!(warm.future, cold.future, "{what}: future");
    assert_eq!(warm.selected, cold.selected, "{what}: selected");
    assert_eq!(warm.err_estimate, cold.err_estimate, "{what}: err_estimate");
    assert_eq!(warm.err_current, cold.err_current, "{what}: err_current");
    for (w, c, which) in [
        (&warm.summary_estimate, &cold.summary_estimate, "estimate"),
        (&warm.summary_current, &cold.summary_current, "current"),
    ] {
        assert_eq!(w.mean_error, c.mean_error, "{what}: {which} mean");
        assert_eq!(w.median_error, c.median_error, "{what}: {which} median");
        assert_eq!(w.frac_below_01, c.frac_below_01, "{what}: {which} <0.1");
        assert_eq!(w.frac_above_1, c.frac_above_1, "{what}: {which} >1");
        assert_eq!(w.count, c.count, "{what}: {which} count");
    }
    assert_eq!(
        warm.trajectories.times, cold.trajectories.times,
        "{what}: trajectory times"
    );
    assert_eq!(
        warm.trajectories.values, cold.trajectories.values,
        "{what}: trajectory values"
    );
    assert_eq!(
        warm.trajectories.pages, cold.trajectories.pages,
        "{what}: trajectory pages"
    );
}

#[test]
fn engine_matches_cold_pipeline_for_every_window_shape_and_budget() {
    let metric = PopularityMetric::paper_pagerank();
    let estimator = PaperEstimator {
        c: 0.1,
        flat_tolerance: 0.0,
    };
    // (window, label, expected columns solved by a warm engine)
    let scenarios: [(u64, u64, &str, u64); 6] = [
        (0, 4, "cold start", 4),
        (0, 5, "append", 1),
        // every snapshot of the slid window was in the previous one, so
        // a pure slide re-solves nothing at all
        (1, 5, "window slide", 0),
        (2, 6, "slide with one new snapshot", 1),
        // t=3..7 all contain page 40: the common set gains a page, so
        // every column's restricted graph changes and must re-solve
        (3, 7, "common-set change (slide)", 4),
        // t=5..8 all contain page 41 as well: changed again
        (5, 8, "common-set change (shrunk window)", 3),
    ];
    for budget in [1usize, 2, 8] {
        qrank_rank::set_thread_budget(budget);
        let mut engine = PipelineEngine::new(metric.clone());
        for &(lo, hi, label, want_solved) in &scenarios {
            let series = window(lo, hi);
            let what = format!("budget {budget}, {label}");
            let warm = engine
                .run(&series, &estimator, 0.05)
                .unwrap_or_else(|e| panic!("{what}: engine failed: {e}"));
            assert_eq!(
                engine.stats().columns_solved(),
                want_solved,
                "{what}: columns solved"
            );
            let cold = run_pipeline_with(&series, &metric, &estimator, 0.05)
                .unwrap_or_else(|e| panic!("{what}: cold pipeline failed: {e}"));
            assert_bitwise_equal(&warm, &cold, &what);
        }
    }
    // restore the default budget for any test that runs after us
    qrank_rank::set_thread_budget(0);
}
