//! `qrank` — command-line interface to the qrank workspace.
//!
//! ```text
//! qrank generate  --model ba --nodes 10000 --out web.edges
//! qrank pagerank  --graph web.edges --top 10
//! qrank stats     --graph web.edges
//! qrank simulate  --months 8 --out series.bin --truth truth.tsv
//! qrank estimate  --series series.bin --c 1.0 --out quality.tsv
//! qrank model     --figure 1
//! ```
//!
//! Every subcommand prints `--help`-style usage on bad arguments; exit
//! code is 0 on success, 2 on usage errors, 1 on runtime failures.

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
qrank <command> [options]

commands:
  generate   write a synthetic web graph as an edge list
  pagerank   compute PageRank (or HITS/in-degree/OPIC) scores for a graph
  stats      structural summary of a graph (degrees, bow-tie, power law)
  simulate   run the agent-based web simulator and crawl snapshots
  estimate   estimate page quality from a snapshot series
  serve      run the quality-score TCP service over a snapshot series
  bench-load load-test a running serve instance, report JSON latencies
  obs-dump   dump an observability snapshot from a server or pipeline run
  trace      scrape request traces and SLO status from a traced server
  model      print the user-visitation model curves (paper figures 1-3)
  cohort     analytic popularity-vs-quality bias diagnostics
  wal        inspect, verify, or compact a serve durability directory
  chaos-test run the deterministic fault-injection scenario suite
             (requires a build with `--features chaos`)

run `qrank <command> --help` for per-command options.
set QRANK_OBS=1 to enable in-process tracing and metrics collection.";

fn main() -> ExitCode {
    qrank_obs::init_from_env();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "generate" => commands::generate::run(rest),
        "pagerank" => commands::pagerank::run(rest),
        "stats" => commands::stats::run(rest),
        "simulate" => commands::simulate::run(rest),
        "estimate" => commands::estimate::run(rest),
        "serve" => commands::serve::run(rest),
        "bench-load" => commands::bench_load::run(rest),
        "obs-dump" => commands::obs_dump::run(rest),
        "trace" => commands::trace::run(rest),
        "model" => commands::model::run(rest),
        "cohort" => commands::cohort::run(rest),
        "wal" => commands::wal::run(rest),
        "chaos-test" => commands::chaos_test::run(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(args::CliError::Usage(msg)) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
        Err(args::CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
