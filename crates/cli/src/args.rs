//! A small, dependency-free `--flag value` argument parser.

use std::collections::HashMap;

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation; the message includes usage text.
    Usage(String),
    /// The command itself failed (I/O, bad data...).
    Runtime(String),
}

impl CliError {
    /// Usage error with the command's usage text appended.
    pub fn usage(msg: impl Into<String>, usage: &str) -> CliError {
        CliError::Usage(format!("{}\n\n{usage}", msg.into()))
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Runtime(e.to_string())
    }
}

/// Parsed `--key value` options (every option takes exactly one value;
/// `--help` is the single boolean flag, surfaced via [`Parsed::help`]).
#[derive(Debug, Clone)]
pub struct Parsed {
    opts: HashMap<String, String>,
    flags: Vec<String>,
    /// Whether `--help`/`-h` was present.
    pub help: bool,
}

/// Parse an argument list. `allowed` lists the permitted option names
/// (without the `--`); unknown options are usage errors.
pub fn parse(args: &[String], allowed: &[&str], usage: &str) -> Result<Parsed, CliError> {
    parse_with_flags(args, allowed, &[], usage)
}

/// Like [`parse`], but `flags` additionally lists boolean options that
/// take no value (surfaced via [`Parsed::has`]).
pub fn parse_with_flags(
    args: &[String],
    allowed: &[&str],
    flags: &[&str],
    usage: &str,
) -> Result<Parsed, CliError> {
    let mut opts = HashMap::new();
    let mut seen_flags = Vec::new();
    let mut help = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--help" || arg == "-h" {
            help = true;
            continue;
        }
        let Some(key) = arg.strip_prefix("--") else {
            return Err(CliError::usage(
                format!("unexpected argument `{arg}`"),
                usage,
            ));
        };
        if flags.contains(&key) {
            if seen_flags.iter().any(|f| f == key) {
                return Err(CliError::usage(
                    format!("option `--{key}` given twice"),
                    usage,
                ));
            }
            seen_flags.push(key.to_string());
            continue;
        }
        if !allowed.contains(&key) {
            return Err(CliError::usage(format!("unknown option `--{key}`"), usage));
        }
        let Some(value) = it.next() else {
            return Err(CliError::usage(
                format!("option `--{key}` needs a value"),
                usage,
            ));
        };
        if opts.insert(key.to_string(), value.clone()).is_some() {
            return Err(CliError::usage(
                format!("option `--{key}` given twice"),
                usage,
            ));
        }
    }
    Ok(Parsed {
        opts,
        flags: seen_flags,
        help,
    })
}

impl Parsed {
    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }

    /// Was the boolean flag `key` present (see [`parse_with_flags`])?
    pub fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Required string option.
    pub fn require(&self, key: &str, usage: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::usage(format!("missing required option `--{key}`"), usage))
    }

    /// Typed option with a default.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        usage: &str,
    ) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                CliError::usage(format!("invalid value `{raw}` for `--{key}`"), usage)
            }),
        }
    }
}

/// Write `lines` to `path`, or stdout when `path` is `None` or `-`.
pub fn write_output(path: Option<&str>, content: &str) -> Result<(), CliError> {
    match path {
        None | Some("-") => {
            print!("{content}");
            Ok(())
        }
        Some(p) => {
            std::fs::write(p, content)?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_key_value_pairs() {
        let p = parse(
            &argv(&["--nodes", "100", "--out", "x.edges"]),
            &["nodes", "out"],
            "u",
        )
        .unwrap();
        assert_eq!(p.get("nodes"), Some("100"));
        assert_eq!(p.get_or("nodes", 0usize, "u").unwrap(), 100);
        assert_eq!(p.get_or("missing", 7usize, "u").unwrap(), 7);
        assert!(!p.help);
    }

    #[test]
    fn help_flag() {
        let p = parse(&argv(&["--help"]), &[], "u").unwrap();
        assert!(p.help);
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(matches!(
            parse(&argv(&["--bad", "1"]), &["good"], "u"),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv(&["stray"]), &["good"], "u"),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv(&["--good"]), &["good"], "u"),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv(&["--good", "1", "--good", "2"]), &["good"], "u"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn typed_parse_errors_are_usage_errors() {
        let p = parse(&argv(&["--n", "abc"]), &["n"], "u").unwrap();
        assert!(matches!(
            p.get_or("n", 0usize, "u"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn require_reports_missing() {
        let p = parse(&[], &["x"], "usage text").unwrap();
        let err = p.require("x", "usage text").unwrap_err();
        assert!(err.to_string().contains("--x"));
        assert!(err.to_string().contains("usage text"));
    }
}
