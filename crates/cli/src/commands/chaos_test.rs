//! `qrank chaos-test` — deterministic fault-injection scenario runner.
//!
//! Only available in binaries built with the `chaos` cargo feature;
//! release builds compile the hook sites to constant `false` and this
//! command to a short explanation. The runner drives three phases
//! against a small synthetic snapshot series:
//!
//! 1. **wal-retry** — transient `wal.append` I/O errors are injected
//!    and must be absorbed by the journal's bounded-backoff retry;
//!    every delta lands and the store is bitwise identical to an
//!    uninjected reference run.
//! 2. **panic containment** — an injected panic inside refresh ingest
//!    poisons the worker; the last sealed generation must keep serving
//!    over a live socket (liveness), and the panicked plus subsequent
//!    deltas must land in the quarantine file.
//! 3. **recovery** — with faults cleared, the crashed data directory is
//!    recovered and the quarantined deltas re-ingested; the result must
//!    be bitwise identical to the reference.
//!
//! The same `--seed` replays the same injected history, so a failing
//! run is reproducible by quoting its seed.

#[cfg(not(feature = "chaos"))]
use crate::args::CliError;

#[cfg(not(feature = "chaos"))]
/// Entry point (chaos feature disabled).
pub fn run(_argv: &[String]) -> Result<(), CliError> {
    Err(CliError::Runtime(
        "chaos-test requires a chaos-enabled build: `cargo run --features chaos -- chaos-test`; \
         production builds compile the fault hooks out entirely"
            .into(),
    ))
}

#[cfg(feature = "chaos")]
pub use enabled::run;

#[cfg(feature = "chaos")]
mod enabled {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::sync::Arc;

    use qrank_chaos::{FaultKind, FaultPlan, FaultRule};
    use qrank_graph::{CsrGraph, PageId, Snapshot, SnapshotSeries};
    use qrank_serve::json::Obj;
    use qrank_serve::{
        parse_deltas, serve, spawn_refresh_worker_with, DurabilityConfig, EdgeDelta, FsyncPolicy,
        RefreshConfig, RefreshEngine, RefreshMsg, RefreshWorkerOptions, RetryPolicy, ServerConfig,
        ShardedStore,
    };

    use crate::args::{parse, write_output, CliError};

    const USAGE: &str = "\
qrank chaos-test [options]

options:
  --seed S     scenario seed, echoed in the report (default 42)
  --pages N    pages in the synthetic web (default 400)
  --out FILE   write the JSON report to FILE (default stdout)

runs three deterministic fault-injection phases (transient WAL errors
absorbed by retry; a refresh panic contained by the worker while the
last sealed generation keeps serving; recovery + quarantine re-ingest
converging bitwise to the clean reference) and exits nonzero if any
invariant is violated.";

    /// Deterministic preferential-attachment-ish edges from a seeded
    /// 64-bit LCG — no RNG crate needed and stable across runs.
    fn synth_edges(pages: usize, seed: u64) -> Vec<(u32, u32)> {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut edges = Vec::with_capacity(pages * 3);
        for src in 1..pages as u32 {
            for _ in 0..3 {
                // bias toward low ids: popular early pages
                let dst = (next() % u64::from(src)) as u32;
                let dst = dst.min((next() % u64::from(src)) as u32);
                if dst != src {
                    edges.push((src, dst));
                }
            }
        }
        edges
    }

    /// The scenario workload: a three-snapshot seed series plus four
    /// deltas carrying the final 10% of the edges and one new page.
    fn workload(pages: usize, seed: u64) -> (SnapshotSeries, Vec<EdgeDelta>) {
        let edges = synth_edges(pages, seed);
        let page_ids: Vec<PageId> = (0..pages as u64).map(PageId).collect();
        let mut series = SnapshotSeries::new();
        for (i, frac) in [0.7, 0.8, 0.9].iter().enumerate() {
            let cut = (edges.len() as f64 * frac) as usize;
            series
                .push(
                    Snapshot::new(
                        i as f64,
                        CsrGraph::from_edges(pages, &edges[..cut]),
                        page_ids.clone(),
                    )
                    .expect("synthetic snapshot is well-formed"),
                )
                .expect("synthetic series is monotone");
        }
        let tail = &edges[(edges.len() as f64 * 0.9) as usize..];
        let mut deltas: Vec<EdgeDelta> = tail
            .chunks(tail.len().div_ceil(3).max(1))
            .enumerate()
            .map(|(i, chunk)| EdgeDelta {
                time: 3.0 + i as f64,
                added: chunk.iter().map(|&(s, d)| (s as u64, d as u64)).collect(),
                ..Default::default()
            })
            .collect();
        deltas.push(EdgeDelta {
            time: 3.0 + deltas.len() as f64,
            new_pages: vec![pages as u64],
            added: vec![(pages as u64, 0)],
            ..Default::default()
        });
        (series, deltas)
    }

    /// `None` when the two published stores agree on every bit;
    /// otherwise what differed first.
    fn bitwise_mismatch(a: &Arc<ShardedStore>, b: &Arc<ShardedStore>) -> Option<String> {
        let (a, b) = (a.current(), b.current());
        if a.generation() != b.generation() {
            return Some(format!(
                "generation {} vs {}",
                a.generation(),
                b.generation()
            ));
        }
        if a.len() != b.len() {
            return Some(format!("page count {} vs {}", a.len(), b.len()));
        }
        for ((pa, sa), (pb, sb)) in a.topk(a.len()).iter().zip(b.topk(b.len()).iter()) {
            if pa != pb {
                return Some(format!("page order diverges at {pa} vs {pb}"));
            }
            if sa.quality.to_bits() != sb.quality.to_bits()
                || sa.pagerank.to_bits() != sb.pagerank.to_bits()
                || sa.trend != sb.trend
            {
                return Some(format!("score bits differ for page {pa}"));
            }
        }
        None
    }

    fn durable(dir: &std::path::Path) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.to_path_buf(),
            fsync: FsyncPolicy::Never,
            checkpoint_every: 0,
        }
    }

    /// One strict request/response over a fresh connection.
    fn ask(addr: std::net::SocketAddr, line: &str) -> Result<String, CliError> {
        let stream = TcpStream::connect(addr).map_err(|e| CliError::Runtime(e.to_string()))?;
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .ok();
        let mut writer = stream
            .try_clone()
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        let mut reader = BufReader::new(stream);
        writer
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        let mut response = String::new();
        reader
            .read_line(&mut response)
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        Ok(response)
    }

    /// Entry point (chaos feature enabled).
    pub fn run(argv: &[String]) -> Result<(), CliError> {
        let p = parse(argv, &["seed", "pages", "out"], USAGE)?;
        if p.help {
            println!("{USAGE}");
            return Ok(());
        }
        let seed: u64 = p.get_or("seed", 42, USAGE)?;
        let pages: usize = p.get_or("pages", 400, USAGE)?;
        if pages < 10 {
            return Err(CliError::Usage(format!(
                "--pages must be at least 10\n\n{USAGE}"
            )));
        }
        let (series, deltas) = workload(pages, seed);
        let root = std::env::temp_dir().join(format!("qrank_chaos_test_{seed}"));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).map_err(CliError::from)?;
        let mut violations: Vec<String> = Vec::new();

        // --- reference: the same workload with no faults installed ----
        qrank_chaos::clear();
        let ref_handle = Arc::new(ShardedStore::new(1));
        let (mut ref_engine, _) = RefreshEngine::open_durable(
            RefreshConfig::default(),
            &durable(&root.join("reference")),
            Arc::clone(&ref_handle),
            Some(&series),
        )
        .map_err(|e| CliError::Runtime(e.to_string()))?;
        for d in &deltas {
            ref_engine
                .ingest(d)
                .map_err(|e| CliError::Runtime(format!("reference ingest: {e}")))?;
        }
        let reference_generation = ref_handle.current().generation();
        eprintln!(
            "reference: {} deltas ingested, generation {reference_generation}",
            deltas.len()
        );

        // --- phase 1: transient WAL append errors vs bounded retry ----
        // The first journal append fails three consecutive times; the
        // standard 5-attempt policy must ride it out, so every delta
        // still lands and the store matches the reference bit for bit.
        let retry_handle = Arc::new(ShardedStore::new(1));
        let (mut retry_engine, _) = RefreshEngine::open_durable(
            RefreshConfig::default(),
            &durable(&root.join("wal-retry")),
            Arc::clone(&retry_handle),
            Some(&series),
        )
        .map_err(|e| CliError::Runtime(e.to_string()))?;
        retry_engine.set_wal_retry(RetryPolicy::standard(seed));
        // Arm the plan only after the seed is journaled: the injected
        // window covers live ingestion, which is what the retry policy
        // protects.
        qrank_chaos::install(FaultPlan::new(seed).with_rule(FaultRule {
            site: "wal.append".into(),
            kind: FaultKind::Error,
            start: 1,
            every: 1,
            count: 3,
        }));
        let mut retry_errors = 0u64;
        for d in &deltas {
            if let Err(e) = retry_engine.ingest(d) {
                retry_errors += 1;
                eprintln!("phase 1: ingest failed despite retry: {e}");
            }
        }
        let retry_injected = qrank_chaos::status().map_or(0, |(_, n)| n);
        let retry_mismatch = bitwise_mismatch(&ref_handle, &retry_handle);
        if retry_errors > 0 {
            violations.push(format!(
                "wal-retry: {retry_errors} delta(s) failed despite the retry policy"
            ));
        }
        if retry_injected == 0 {
            violations.push("wal-retry: no faults were injected (hooks inert?)".into());
        }
        if let Some(why) = &retry_mismatch {
            violations.push(format!("wal-retry: store diverged from reference: {why}"));
        }
        eprintln!(
            "phase 1 (wal-retry): {retry_injected} fault(s) injected, {retry_errors} ingest \
             error(s), store {}",
            if retry_mismatch.is_none() {
                "BITWISE IDENTICAL"
            } else {
                "DIVERGED"
            }
        );

        // --- phase 2: refresh panic containment + liveness -------------
        // Delta 3 (1-based) panics inside ingest *before* it reaches the
        // journal. The worker must quarantine it, poison itself, keep
        // the last sealed generation serving, and quarantine the
        // remaining deltas rather than ingesting them out of order.
        let crash_dir = root.join("crash");
        let quarantine = crash_dir.join("quarantine.deltas");
        let panic_at = 3u64.min(deltas.len() as u64);
        qrank_chaos::clear();
        let crash_handle = Arc::new(ShardedStore::new(1));
        let (crash_engine, _) = RefreshEngine::open_durable(
            RefreshConfig::default(),
            &durable(&crash_dir),
            Arc::clone(&crash_handle),
            Some(&series),
        )
        .map_err(|e| CliError::Runtime(e.to_string()))?;
        // Seeding itself runs ingest cycles, so arm the panic only once
        // the engine is live: hit N of `refresh.ingest` is then exactly
        // the N-th streamed delta.
        qrank_chaos::install(FaultPlan::new(seed).with_rule(FaultRule {
            site: "refresh.ingest".into(),
            kind: FaultKind::Panic,
            start: panic_at,
            every: 1,
            count: 1,
        }));
        let server = serve(
            Arc::clone(&crash_handle),
            &ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 1,
                ..Default::default()
            },
        )
        .map_err(|e| CliError::Runtime(e.to_string()))?;
        let (tx, join) = spawn_refresh_worker_with(
            crash_engine,
            RefreshWorkerOptions {
                quarantine: Some(quarantine.clone()),
            },
        );
        // The injected panic is the point of this phase; silence the
        // default hook's backtrace while the worker absorbs it.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for d in &deltas {
            tx.send(RefreshMsg::Delta(d.clone()))
                .map_err(|e| CliError::Runtime(e.to_string()))?;
        }
        tx.send(RefreshMsg::Shutdown)
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        let joined = join.join();
        std::panic::set_hook(default_hook);
        let (poisoned_engine, worker_errors) =
            joined.map_err(|_| CliError::Runtime("refresh worker escaped containment".into()))?;
        drop(poisoned_engine);
        let sealed_generation = crash_handle.current().generation();
        let expected_sealed = panic_at; // seed gen 1 + (panic_at - 1) ingested deltas
        if sealed_generation != expected_sealed {
            violations.push(format!(
                "containment: sealed generation {sealed_generation}, expected {expected_sealed}"
            ));
        }
        if !worker_errors.iter().any(|e| e.contains("panicked")) {
            violations.push("containment: no panic was reported by the worker".into());
        }
        // Liveness: the poisoned worker must not take the serve path
        // down — probes and reads still answer from the sealed view.
        let health = ask(server.addr(), "health")?;
        let ready = ask(server.addr(), "ready")?;
        let score = ask(server.addr(), "score 0")?;
        let live = health.contains(r#""status":"serving""#)
            && ready.contains(r#""ready":true"#)
            && score.contains(r#""ok":true"#);
        if !live {
            violations.push(format!(
                "containment: server not live after panic: health={} ready={} score={}",
                health.trim(),
                ready.trim(),
                score.trim()
            ));
        }
        server.shutdown();
        let quarantined_text = std::fs::read_to_string(&quarantine).unwrap_or_default();
        let quarantined = parse_deltas(&quarantined_text)
            .map_err(|e| CliError::Runtime(format!("quarantine file unparseable: {e}")))?;
        let expected_quarantined = deltas.len() as u64 - (panic_at - 1);
        if quarantined.len() as u64 != expected_quarantined {
            violations.push(format!(
                "containment: {} delta(s) quarantined, expected {expected_quarantined}",
                quarantined.len()
            ));
        }
        eprintln!(
            "phase 2 (containment): panic at delta {panic_at}, sealed generation \
             {sealed_generation} kept serving (live: {live}), {} delta(s) quarantined",
            quarantined.len()
        );

        // --- phase 3: recovery + quarantine re-ingest ------------------
        // Faults off, the crashed directory recovers to exactly the
        // pre-panic state, and replaying the quarantine file converges
        // bitwise on the clean reference.
        qrank_chaos::clear();
        let recovered_handle = Arc::new(ShardedStore::new(1));
        let (mut recovered_engine, report) = RefreshEngine::open_durable(
            RefreshConfig::default(),
            &durable(&crash_dir),
            Arc::clone(&recovered_handle),
            None,
        )
        .map_err(|e| CliError::Runtime(e.to_string()))?;
        if recovered_handle.current().generation() != expected_sealed {
            violations.push(format!(
                "recovery: recovered generation {}, expected {expected_sealed}",
                recovered_handle.current().generation()
            ));
        }
        for d in &quarantined {
            if let Err(e) = recovered_engine.ingest(d) {
                violations.push(format!("recovery: quarantined delta re-ingest failed: {e}"));
            }
        }
        let recovery_mismatch = bitwise_mismatch(&ref_handle, &recovered_handle);
        if let Some(why) = &recovery_mismatch {
            violations.push(format!("recovery: store diverged from reference: {why}"));
        }
        eprintln!(
            "phase 3 (recovery): {} record(s) replayed, quarantine re-ingested, store {}",
            report.replayed_records,
            if recovery_mismatch.is_none() {
                "BITWISE IDENTICAL"
            } else {
                "DIVERGED"
            }
        );

        let json = Obj::new()
            .int("seed", seed)
            .int("pages", pages as u64)
            .int("deltas", deltas.len() as u64)
            .raw(
                "wal_retry",
                &Obj::new()
                    .int("injected", retry_injected)
                    .int("ingest_errors", retry_errors)
                    .bool("bitwise_identical", retry_mismatch.is_none())
                    .finish(),
            )
            .raw(
                "containment",
                &Obj::new()
                    .int("panic_at_delta", panic_at)
                    .int("sealed_generation", sealed_generation)
                    .bool("served_while_poisoned", live)
                    .int("quarantined", quarantined.len() as u64)
                    .finish(),
            )
            .raw(
                "recovery",
                &Obj::new()
                    .int("replayed_records", report.replayed_records)
                    .bool("bitwise_identical", recovery_mismatch.is_none())
                    .finish(),
            )
            .bool("ok", violations.is_empty())
            .finish();
        write_output(p.get("out"), &format!("{json}\n"))?;
        let _ = std::fs::remove_dir_all(&root);
        if violations.is_empty() {
            eprintln!("chaos-test: all invariants held (seed {seed})");
            Ok(())
        } else {
            Err(CliError::Runtime(format!(
                "chaos-test violated {} invariant(s): {}",
                violations.len(),
                violations.join("; ")
            )))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn argv(s: &[&str]) -> Vec<String> {
            s.iter().map(|x| x.to_string()).collect()
        }

        #[test]
        fn chaos_scenario_holds_all_invariants() {
            // The chaos plan is process-global state; this is the only
            // CLI test that installs one, and `run` clears it on exit.
            let dir = std::env::temp_dir().join("qrank_cli_test_chaos");
            std::fs::create_dir_all(&dir).unwrap();
            let out = dir.join("chaos.json");
            run(&argv(&["--pages", "120", "--out", out.to_str().unwrap()])).unwrap();
            let json = std::fs::read_to_string(&out).unwrap();
            assert!(json.contains(r#""ok":true"#), "{json}");
            assert!(json.contains(r#""served_while_poisoned":true"#), "{json}");
        }

        #[test]
        fn input_validation() {
            assert!(matches!(
                run(&argv(&["--pages", "2"])),
                Err(CliError::Usage(_))
            ));
            assert!(matches!(
                run(&argv(&["--seed", "nope"])),
                Err(CliError::Usage(_))
            ));
        }
    }
}
