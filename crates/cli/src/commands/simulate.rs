//! `qrank simulate` — run the agent-based web simulator and crawl a
//! snapshot series, writing the series (binary) and optionally the
//! ground-truth page qualities (TSV).

use qrank_graph::io::encode_series;
use qrank_sim::{Crawler, QualityDist, SimConfig, SnapshotSchedule, World};

use crate::args::{parse, write_output, CliError};

const USAGE: &str = "\
qrank simulate --out <file> [options]

options:
  --out FILE         output path for the binary snapshot series
  --truth FILE       also write `page<TAB>quality<TAB>created_at` TSV
  --users N          user population (default 1000)
  --sites S          number of sites (default 25)
  --visit-ratio R    visits per unit popularity per month (default 0.8)
  --birth-rate B     new pages per month (default 50)
  --forget-rate F    forgetting rate (default 0)
  --burn-in M        months before the first snapshot (default 10)
  --snapshots K      number of snapshots (default 4)
  --interval M       months between estimation snapshots (default 1)
  --future M         months from first snapshot to the held-out one (default 6)
  --seed S           RNG seed (default 42)
  --threads T        visit-phase worker threads (default 1; the simulated
                     history is bit-identical for every value)

the snapshot times are: burn-in + 0, interval, 2*interval, ...,
(K-2)*interval, and burn-in + future for the last snapshot.";

/// Entry point.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let allowed = [
        "out",
        "truth",
        "users",
        "sites",
        "visit-ratio",
        "birth-rate",
        "forget-rate",
        "burn-in",
        "snapshots",
        "interval",
        "future",
        "seed",
        "threads",
    ];
    let p = parse(argv, &allowed, USAGE)?;
    if p.help {
        println!("{USAGE}");
        return Ok(());
    }
    let out = p.require("out", USAGE)?.to_string();

    let cfg = SimConfig {
        num_users: p.get_or("users", 1000, USAGE)?,
        num_sites: p.get_or("sites", 25, USAGE)?,
        visit_ratio: p.get_or("visit-ratio", 0.8, USAGE)?,
        page_birth_rate: p.get_or("birth-rate", 50.0, USAGE)?,
        forget_rate: p.get_or("forget-rate", 0.0, USAGE)?,
        quality_dist: QualityDist::Uniform { lo: 0.05, hi: 0.95 },
        dt: 0.05,
        seed: p.get_or("seed", 42, USAGE)?,
        ..Default::default()
    };
    let burn_in: f64 = p.get_or("burn-in", 10.0, USAGE)?;
    let count: usize = p.get_or("snapshots", 4, USAGE)?;
    let interval: f64 = p.get_or("interval", 1.0, USAGE)?;
    let future: f64 = p.get_or("future", 6.0, USAGE)?;
    if count < 2 {
        return Err(CliError::usage("need at least 2 snapshots", USAGE));
    }
    let mut times: Vec<f64> = (0..count - 1)
        .map(|i| burn_in + interval * i as f64)
        .collect();
    times.push(burn_in + future);
    if times.windows(2).any(|w| w[1] <= w[0]) {
        return Err(CliError::usage(
            "snapshot times must be strictly increasing",
            USAGE,
        ));
    }

    let mut world = World::bootstrap(cfg).map_err(|e| CliError::Runtime(e.to_string()))?;
    world.set_thread_budget(p.get_or("threads", 1, USAGE)?);
    let schedule = SnapshotSchedule { times };
    let series = Crawler::default()
        .crawl_schedule(&mut world, &schedule)
        .map_err(|e| CliError::Runtime(e.to_string()))?;

    std::fs::write(&out, encode_series(&series))?;
    eprintln!(
        "simulated {} pages; wrote {} snapshots at t = {:?} to {out}",
        world.num_pages(),
        series.len(),
        series.times()
    );

    if let Some(truth_path) = p.get("truth") {
        let mut tsv = String::from("page\tquality\tcreated_at\n");
        for pg in 0..world.num_pages() as u32 {
            let info = world.page(pg);
            tsv.push_str(&format!(
                "{pg}\t{:.6}\t{:.3}\n",
                info.quality, info.created_at
            ));
        }
        write_output(Some(truth_path), &tsv)?;
        eprintln!(
            "wrote ground truth for {} pages to {truth_path}",
            world.num_pages()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrank_graph::io::decode_series;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn simulates_and_writes_series_and_truth() {
        let dir = std::env::temp_dir().join("qrank_cli_test_sim");
        std::fs::create_dir_all(&dir).unwrap();
        let series_path = dir.join("s.bin");
        let truth_path = dir.join("t.tsv");
        run(&argv(&[
            "--out",
            series_path.to_str().unwrap(),
            "--truth",
            truth_path.to_str().unwrap(),
            "--users",
            "150",
            "--sites",
            "4",
            "--birth-rate",
            "8",
            "--burn-in",
            "2",
            "--future",
            "4",
        ]))
        .unwrap();
        let bytes = std::fs::read(&series_path).unwrap();
        let series = decode_series(&bytes).unwrap();
        assert_eq!(series.len(), 4);
        assert_eq!(series.times(), vec![2.0, 3.0, 4.0, 6.0]);
        let truth = std::fs::read_to_string(&truth_path).unwrap();
        assert!(truth.lines().count() > 150);
        assert!(truth.starts_with("page\tquality"));
    }

    #[test]
    fn rejects_single_snapshot() {
        assert!(matches!(
            run(&argv(&["--out", "/tmp/x.bin", "--snapshots", "1"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn rejects_nonincreasing_times() {
        assert!(matches!(
            run(&argv(&["--out", "/tmp/x.bin", "--future", "0"])),
            Err(CliError::Usage(_))
        ));
    }
}
