//! `qrank cohort` — analytic bias diagnostics from the user-visitation
//! model: how badly does popularity ranking misorder a cohort of pages,
//! and how long do young quality pages stay buried?

use qrank_model::cohort::{
    hidden_gems, pairwise_inversion_rate, time_to_overtake, CohortEnv, CohortPage,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::args::{parse, CliError};

const USAGE: &str = "\
qrank cohort [options]

options:
  --pages N          cohort size (default 2000)
  --max-age A        ages drawn uniformly from [0, A] months (default 24)
  --visit-ratio R    r/n (default 1.0)
  --users N          population for the birth popularity 1/N (default 10000)
  --gem-quality Q    hidden-gem quality floor (default 0.7)
  --gem-popularity P hidden-gem popularity ceiling (default 0.1)
  --seed S           RNG seed (default 42)

prints the pairwise inversion rate of popularity vs quality, the hidden-gem
census, and overtake times for a 0.9-quality newcomer against incumbents.";

/// Entry point.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let allowed = [
        "pages",
        "max-age",
        "visit-ratio",
        "users",
        "gem-quality",
        "gem-popularity",
        "seed",
    ];
    let p = parse(argv, &allowed, USAGE)?;
    if p.help {
        println!("{USAGE}");
        return Ok(());
    }
    let pages: usize = p.get_or("pages", 2000, USAGE)?;
    let max_age: f64 = p.get_or("max-age", 24.0, USAGE)?;
    let visit_ratio: f64 = p.get_or("visit-ratio", 1.0, USAGE)?;
    let users: f64 = p.get_or("users", 10_000.0, USAGE)?;
    let gem_q: f64 = p.get_or("gem-quality", 0.7, USAGE)?;
    let gem_p: f64 = p.get_or("gem-popularity", 0.1, USAGE)?;
    let seed: u64 = p.get_or("seed", 42, USAGE)?;

    let env = CohortEnv {
        visit_ratio,
        initial_popularity: 1.0 / users,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let cohort: Vec<CohortPage> = (0..pages)
        .map(|_| CohortPage {
            quality: 0.05 + 0.9 * rng.random::<f64>(),
            age: max_age * rng.random::<f64>(),
        })
        .collect();

    let inv =
        pairwise_inversion_rate(&env, &cohort).map_err(|e| CliError::Runtime(e.to_string()))?;
    println!("cohort: {pages} pages, ages U[0, {max_age}] months, qualities U[0.05, 0.95]");
    println!(
        "pairwise inversion rate of popularity vs quality: {:.3}",
        inv
    );
    println!("(0 = popularity ranks exactly like quality; 0.5 = random)\n");

    let gems =
        hidden_gems(&env, &cohort, gem_q, gem_p).map_err(|e| CliError::Runtime(e.to_string()))?;
    let total_gems = cohort.iter().filter(|p| p.quality >= gem_q).count();
    println!(
        "hidden gems (quality >= {gem_q}, popularity < {gem_p}): {} of {} quality pages ({:.1}%)",
        gems.len(),
        total_gems,
        100.0 * gems.len() as f64 / total_gems.max(1) as f64
    );
    if let Some(&g) = gems.first() {
        println!(
            "  example: quality {:.2}, age {:.1} months, popularity {:.4}",
            cohort[g].quality,
            cohort[g].age,
            env.popularity_of(cohort[g])
                .map_err(|e| CliError::Runtime(e.to_string()))?
        );
    }

    println!("\novertake times for a newborn 0.9-quality page:");
    for incumbent in [0.2, 0.4, 0.6, 0.8] {
        match time_to_overtake(&env, 0.9, incumbent)
            .map_err(|e| CliError::Runtime(e.to_string()))?
        {
            Some(t) => println!("  vs mature quality-{incumbent} incumbent: {t:.1} months"),
            None => println!("  vs mature quality-{incumbent} incumbent: never"),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn runs_with_defaults() {
        run(&argv(&["--pages", "200"])).unwrap();
    }

    #[test]
    fn rejects_bad_numbers() {
        assert!(matches!(
            run(&argv(&["--pages", "lots"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn help_works() {
        run(&argv(&["--help"])).unwrap();
    }
}
