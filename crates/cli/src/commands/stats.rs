//! `qrank stats` — structural summary of a web graph.

use qrank_graph::bowtie::bowtie_decomposition;
use qrank_graph::distance::sample_distances;
use qrank_graph::io::read_edge_list;
use qrank_graph::scc::tarjan_scc;
use qrank_graph::stats::summarize;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::args::{parse, CliError};

const USAGE: &str = "\
qrank stats --graph <file> [options]

options:
  --graph FILE       input edge list
  --distance-samples N   BFS sources for the distance survey (default 8; 0 to skip)
  --seed S           RNG seed for sampling (default 42)";

/// Entry point.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv, &["graph", "distance-samples", "seed"], USAGE)?;
    if p.help {
        println!("{USAGE}");
        return Ok(());
    }
    let path = p.require("graph", USAGE)?;
    let text = std::fs::read_to_string(path)?;
    let g = read_edge_list(text.as_bytes()).map_err(|e| CliError::Runtime(e.to_string()))?;

    let s = summarize(&g);
    println!("nodes:            {}", s.nodes);
    println!("edges:            {}", s.edges);
    println!("mean degree:      {:.3}", s.mean_degree);
    println!("max in-degree:    {}", s.max_in_degree);
    println!("max out-degree:   {}", s.max_out_degree);
    println!("dangling nodes:   {}", s.dangling);
    println!("reciprocity:      {:.3}", s.reciprocity);
    match s.in_degree_alpha {
        Some(a) => println!("in-degree power-law alpha (x_min=2): {a:.3}"),
        None => println!("in-degree power-law alpha: not estimable"),
    }

    if s.nodes > 0 {
        let scc = tarjan_scc(&g);
        println!("strongly connected components: {}", scc.num_components);
        let bt = bowtie_decomposition(&g);
        let (core, inn, out, tendril, disc) = bt.counts();
        println!(
            "bow tie: core {core} ({:.1}%), in {inn}, out {out}, tendrils {tendril}, disconnected {disc}",
            100.0 * bt.core_fraction()
        );

        let samples: usize = p.get_or("distance-samples", 8, USAGE)?;
        if samples > 0 {
            let seed: u64 = p.get_or("seed", 42, USAGE)?;
            let mut rng = StdRng::seed_from_u64(seed);
            let d = sample_distances(&g, samples, &mut rng);
            println!(
                "distances ({} sources): mean {:.2}, effective diameter {}, max {}, reachable {:.1}%",
                d.sources_sampled,
                d.mean_distance,
                d.effective_diameter,
                d.max_observed,
                100.0 * d.reachable_fraction
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn runs_on_small_graph() {
        let dir = std::env::temp_dir().join("qrank_cli_test_stats");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        std::fs::write(&path, "0 1\n1 2\n2 0\n3 1\n").unwrap();
        run(&argv(&["--graph", path.to_str().unwrap()])).unwrap();
        // skipping the distance survey also works
        run(&argv(&[
            "--graph",
            path.to_str().unwrap(),
            "--distance-samples",
            "0",
        ]))
        .unwrap();
    }

    #[test]
    fn runs_on_empty_graph() {
        let dir = std::env::temp_dir().join("qrank_cli_test_stats");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.edges");
        std::fs::write(&path, "# nodes: 0\n").unwrap();
        run(&argv(&["--graph", path.to_str().unwrap()])).unwrap();
    }
}
