//! `qrank serve` — run the quality-score service.
//!
//! Loads a snapshot series (from `qrank simulate`), seeds the refresh
//! engine, and serves the line-delimited JSON protocol over TCP. An
//! optional delta file is streamed through the refresh worker so the
//! served generations advance while the server runs.

use std::sync::Arc;

use qrank_graph::io::decode_series;
use qrank_serve::{
    parse_deltas, serve, spawn_refresh_worker_with, DurabilityConfig, FsyncPolicy, RefreshConfig,
    RefreshEngine, RefreshMsg, RefreshWorkerOptions, RetryPolicy, ServerConfig, ShardedStore,
    ShedPolicy,
};

use crate::args::{parse, CliError};

/// Unix signal plumbing for graceful drain on SIGINT/SIGTERM. Raw
/// `signal(2)` via its C ABI — the only thing the handler does is flip
/// an atomic, which is async-signal-safe.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SIGNALED: AtomicBool = AtomicBool::new(false);

    extern "C" fn handler(_: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Route SIGINT (2) and SIGTERM (15) to the drain flag.
    pub fn install() {
        unsafe {
            signal(2, handler);
            signal(15, handler);
        }
    }

    pub fn received() -> bool {
        SIGNALED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn received() -> bool {
        false
    }
}

const USAGE: &str = "\
qrank serve --series <file> [options]

options:
  --series FILE      binary snapshot series from `qrank simulate` (required)
  --addr HOST:PORT   bind address (default 127.0.0.1:7878; port 0 = ephemeral)
  --workers N        request worker threads (default 4)
  --shards N         partition the score store into N shards (default 1);
                     `score` dispatches to the owning shard, `topk`/`stats`
                     scatter-gather — responses are bitwise identical at
                     every N. With --data-dir, each shard keeps its own
                     WAL subtree; the shard count of an existing data
                     directory must match.
  --threads T        stage-engine align/solver worker threads (default:
                     QRANK_THREADS or available parallelism; output is
                     bitwise identical at every setting)
  --cache N          topk response cache capacity (default 64)
  --deltas FILE      edge-delta file to stream through the refresh worker
  --max-window N     snapshots kept in the estimation window (default 4)
  --c C              Equation 1 constant (default 0.1)
  --min-change X     report filter on relative change (default 0.05)
  --duration SECS    serve for SECS seconds then exit (default 0 = until
                     SIGINT/SIGTERM or a protocol `shutdown`)
  --port-file FILE   write the bound address to FILE once listening

overload protection & drain:
  --max-conns N      maximum simultaneously open connections (default 0 =
                     unlimited); excess connections get one structured
                     `overloaded` line with a retry_after_ms hint
  --accept-queue N   accepted connections waiting for a worker (default
                     1024); overflow is rejected, never queued unboundedly
  --read-deadline-ms MS  close connections that complete no request for
                     MS ms — idle or slow-loris (default 30000; 0 = off)
  --write-timeout-ms MS  socket write timeout (default 5000; 0 = off)
  --shed-depth N     shed expensive verbs (topk/stats/metrics/trace) when
                     load (queued + in-flight) reaches N (default 0 = off)
  --shed-cheap-depth N  shed cheap verbs (score) at load N (default
                     4 x shed-depth; probes are never shed)
  --shed-latency-us L  also shed expensive verbs while served p99 exceeds
                     L microseconds (default 0 = off)
  --drain-deadline SECS  graceful-drain budget on shutdown (default 5):
                     stop accepting, finish in-flight work, then write the
                     final checkpoint; SIGINT/SIGTERM and the `shutdown`
                     verb both take this path

failure containment:
  --quarantine FILE  append rejected deltas here (`# quarantined: <reason>`
                     + the delta, re-ingestable via --deltas; default with
                     --data-dir: DIR/quarantine.deltas). A panicking
                     refresh poisons the worker but the last published
                     generation keeps serving.
  --wal-retries N    attempts per journal append/sync on transient I/O
                     errors, exponential backoff with seeded jitter
                     (default 5 with --data-dir; 1 = no retry)

tracing (see `qrank trace` for scraping a running server):
  --trace-sample N   trace every N-th request (head-based, deterministic;
                     default 0 = tracing off). Implies QRANK_OBS=1.
                     Refresh cycles are always traced when sampling is on.
  --slo-latency-us L per-request latency objective in microseconds for
                     the SLO monitor (default 1000)

durability (see `qrank wal` for offline inspection):
  --data-dir DIR     journal every ingested delta to a WAL in DIR and
                     recover from it on startup; the --series seed is
                     used only when DIR has no history yet
  --fsync POLICY     WAL fsync policy: always | every:N | never
                     (default every:64)
  --checkpoint-every N  checkpoint engine state after every N ingested
                     deltas (default 256; 0 = only on clean shutdown)

protocol (line-delimited JSON over TCP):
  score <page> | topk <n> | stats | metrics | health | ready | trace ...
  | shutdown
  (`metrics` answers in Prometheus text format, terminated by `# EOF`;
  `trace` takes: slowest [verb] | id <n> | slo | report; `ready` reports
  readiness — false until a sealed generation exists or while draining;
  `shutdown` acks and starts a graceful drain)";

/// Entry point.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let allowed = [
        "series",
        "addr",
        "workers",
        "shards",
        "threads",
        "cache",
        "deltas",
        "max-window",
        "c",
        "min-change",
        "duration",
        "port-file",
        "data-dir",
        "fsync",
        "checkpoint-every",
        "trace-sample",
        "slo-latency-us",
        "max-conns",
        "accept-queue",
        "read-deadline-ms",
        "write-timeout-ms",
        "shed-depth",
        "shed-cheap-depth",
        "shed-latency-us",
        "drain-deadline",
        "quarantine",
        "wal-retries",
    ];
    let p = parse(argv, &allowed, USAGE)?;
    if p.help {
        println!("{USAGE}");
        return Ok(());
    }
    let series_path = p.require("series", USAGE)?;
    let refresh_cfg = RefreshConfig {
        c: p.get_or("c", 0.1, USAGE)?,
        min_relative_change: p.get_or("min-change", 0.05, USAGE)?,
        max_window: p.get_or("max-window", 4, USAGE)?,
        ..Default::default()
    };
    let server_cfg = ServerConfig {
        addr: p.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        workers: p.get_or("workers", 4, USAGE)?,
        cache_capacity: p.get_or("cache", 64, USAGE)?,
        trace_sample: p.get_or("trace-sample", 0, USAGE)?,
        slo_latency_us: p.get_or("slo-latency-us", 1_000, USAGE)?,
        max_connections: p.get_or("max-conns", 0, USAGE)?,
        accept_queue: p.get_or("accept-queue", 1024, USAGE)?,
        read_deadline_ms: p.get_or("read-deadline-ms", 30_000, USAGE)?,
        write_timeout_ms: p.get_or("write-timeout-ms", 5_000, USAGE)?,
        shed: ShedPolicy {
            expensive_at: p.get_or("shed-depth", 0, USAGE)?,
            cheap_at: p.get_or("shed-cheap-depth", 0, USAGE)?,
            latency_us: p.get_or("shed-latency-us", 0, USAGE)?,
        },
    };
    let drain_deadline: f64 = p.get_or("drain-deadline", 5.0, USAGE)?;
    if server_cfg.trace_sample > 0 {
        // Tracing rides on the observability gate; requesting a sample
        // rate is an explicit opt-in, equivalent to QRANK_OBS=1.
        qrank_obs::set_enabled(true);
    }
    let duration: f64 = p.get_or("duration", 0.0, USAGE)?;
    let threads: usize = p.get_or("threads", 0, USAGE)?;
    if threads > 0 {
        // One budget for everything compute-bound in the refresh path:
        // the solvers read the process-global budget, and the engine's
        // parallel align stage follows it too.
        qrank_rank::set_thread_budget(threads);
    }

    let bytes = std::fs::read(series_path)?;
    let series = decode_series(&bytes).map_err(|e| CliError::Runtime(e.to_string()))?;
    let deltas = match p.get("deltas") {
        Some(path) => parse_deltas(&std::fs::read_to_string(path)?)
            .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?,
        None => Vec::new(),
    };

    let shards: usize = p.get_or("shards", 1, USAGE)?;
    if shards == 0 || shards > 1024 {
        return Err(CliError::Usage(format!(
            "--shards must be in 1..=1024, got {shards}\n\n{USAGE}"
        )));
    }
    let wal_retries: u32 = p.get_or("wal-retries", 5, USAGE)?;
    if wal_retries == 0 {
        return Err(CliError::Usage(format!(
            "--wal-retries must be at least 1 (1 = no retry)\n\n{USAGE}"
        )));
    }
    let handle = Arc::new(ShardedStore::new(shards));
    let mut engine = match p.get("data-dir") {
        Some(data_dir) => {
            let fsync: FsyncPolicy = p
                .get("fsync")
                .unwrap_or("every:64")
                .parse()
                .map_err(|e| CliError::Usage(format!("{e}\n\n{USAGE}")))?;
            let dur = DurabilityConfig {
                dir: data_dir.into(),
                fsync,
                checkpoint_every: p.get_or("checkpoint-every", 256, USAGE)?,
            };
            let (engine, report) =
                RefreshEngine::open_durable(refresh_cfg, &dur, Arc::clone(&handle), Some(&series))
                    .map_err(|e| CliError::Runtime(e.to_string()))?;
            if report.checkpoint_generation.is_some() || report.replayed_records > 0 {
                eprintln!(
                    "recovered from {data_dir}: checkpoint generation {}, {} record(s) replayed",
                    report
                        .checkpoint_generation
                        .map_or_else(|| "none".to_string(), |g| g.to_string()),
                    report.replayed_records
                );
            }
            if let Some(reason) = &report.torn_tail {
                eprintln!("repaired torn WAL tail: {reason}");
            }
            if report.skipped_checkpoints > 0 {
                eprintln!(
                    "warning: {} corrupt checkpoint(s) skipped during recovery",
                    report.skipped_checkpoints
                );
            }
            for err in &report.replay_errors {
                eprintln!("replay: delta rejected ({err})");
            }
            let mut engine = engine;
            engine.set_wal_retry(RetryPolicy {
                attempts: wal_retries,
                ..RetryPolicy::standard(0x9e3779b97f4a7c15)
            });
            engine
        }
        None => RefreshEngine::from_series(&series, refresh_cfg, Arc::clone(&handle))
            .map_err(|e| CliError::Runtime(e.to_string()))?,
    };
    let store = handle.current();
    let server = serve(handle, &server_cfg).map_err(|e| CliError::Runtime(e.to_string()))?;
    // Share the server's tracer with the refresh engine so ingest
    // cycles land in the same slowest-K store and SLO windows.
    engine.set_tracer(server.tracer());
    if server_cfg.trace_sample > 0 {
        eprintln!(
            "tracing 1-in-{} requests (SLO latency objective {}µs); query with `trace` or `qrank trace`",
            server_cfg.trace_sample, server_cfg.slo_latency_us
        );
    }
    let seeded = engine.stage_stats();
    eprintln!(
        "serving {} pages (generation {}, window of {} snapshots, {} shard(s)) on {}",
        store.len(),
        store.generation(),
        series.len(),
        shards,
        server.addr()
    );
    eprintln!(
        "seed pipeline: {} trajectory columns solved, {} reused from the stage cache",
        seeded.columns_solved(),
        seeded.columns_reused()
    );
    if let Some(path) = p.get("port-file") {
        std::fs::write(path, server.addr().to_string())?;
    }

    // Rejected or panic-poisoned deltas go to the quarantine file rather
    // than killing ingestion; durable servers get one by default so a
    // poisoned delta is never silently dropped.
    let quarantine = p
        .get("quarantine")
        .map(std::path::PathBuf::from)
        .or_else(|| {
            p.get("data-dir")
                .map(|d| std::path::Path::new(d).join("quarantine.deltas"))
        });
    if let Some(path) = &quarantine {
        eprintln!("quarantining rejected deltas to {}", path.display());
    }
    let (refresh_tx, refresh_join) =
        spawn_refresh_worker_with(engine, RefreshWorkerOptions { quarantine });
    let num_deltas = deltas.len();
    for delta in deltas {
        refresh_tx
            .send(RefreshMsg::Delta(delta))
            .map_err(|e| CliError::Runtime(e.to_string()))?;
    }
    if num_deltas > 0 {
        eprintln!("queued {num_deltas} deltas for the refresh worker");
    }

    // Wait for one of the three exit signals: the duration elapsing, a
    // protocol `shutdown` verb, or SIGINT/SIGTERM.
    sig::install();
    let started = std::time::Instant::now();
    loop {
        if duration > 0.0 && started.elapsed().as_secs_f64() >= duration {
            break;
        }
        if server.drain_requested() {
            eprintln!("shutdown requested over the protocol; draining");
            break;
        }
        if sig::received() {
            eprintln!("signal received; draining");
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }

    // Graceful drain: stop accepting, finish in-flight work under the
    // deadline, then stop the refresh worker and write the final
    // checkpoint so the next boot replays nothing.
    let metrics_handle = server.metrics();
    let report = server.drain(std::time::Duration::from_secs_f64(drain_deadline.max(0.0)));
    let metrics = metrics_handle.snapshot();
    if report.completed {
        eprintln!("drain completed in {:?}", report.waited);
    } else {
        eprintln!(
            "drain deadline ({drain_deadline}s) forced shutdown with {} connection(s) aborted",
            report.aborted_connections
        );
    }
    refresh_tx
        .send(RefreshMsg::Shutdown)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let (mut engine, errors) = refresh_join
        .join()
        .map_err(|_| CliError::Runtime("refresh worker panicked".into()))?;
    for err in &errors {
        eprintln!("refresh error: {err}");
    }
    // A clean shutdown checkpoints the engine so the next boot replays
    // nothing; `checkpoint_now` is a no-op without a data dir.
    match engine.checkpoint_now() {
        Ok(Some(lsn)) => eprintln!("shutdown checkpoint written at LSN {lsn}"),
        Ok(None) => {}
        Err(e) => eprintln!("warning: shutdown checkpoint failed: {e}"),
    }
    eprintln!(
        "served {} requests ({} errors), final generation {}",
        metrics.requests,
        metrics.errors,
        engine.generation()
    );
    if errors.is_empty() {
        Ok(())
    } else {
        Err(CliError::Runtime(format!(
            "{} refresh deltas failed",
            errors.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qrank_cli_test_serve");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_series(path: &std::path::Path) {
        crate::commands::simulate::run(&argv(&[
            "--out",
            path.to_str().unwrap(),
            "--users",
            "120",
            "--sites",
            "3",
            "--birth-rate",
            "5",
            "--burn-in",
            "2",
            "--future",
            "3",
        ]))
        .unwrap();
    }

    #[test]
    fn serves_a_simulated_series_end_to_end() {
        let dir = temp_dir();
        let series_path = dir.join("serve.bin");
        let port_file = dir.join("serve.port");
        let _ = std::fs::remove_file(&port_file);
        write_series(&series_path);

        let series_arg = series_path.to_str().unwrap().to_string();
        let port_arg = port_file.to_str().unwrap().to_string();
        let server = std::thread::spawn(move || {
            run(&argv(&[
                "--series",
                &series_arg,
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--duration",
                "3",
                "--port-file",
                &port_arg,
            ]))
        });

        // wait for the port file, then talk to the server
        let mut addr = String::new();
        for _ in 0..300 {
            if let Ok(contents) = std::fs::read_to_string(&port_file) {
                if !contents.is_empty() {
                    addr = contents;
                    break;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(!addr.is_empty(), "server never wrote its port file");
        let stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"health\ntopk 3\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains(r#""status":"serving""#), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains(r#""ok":true"#), "{line}");
        drop(writer);
        server.join().unwrap().unwrap();
    }

    #[test]
    fn durable_serve_checkpoints_and_recovers_across_restarts() {
        let dir = temp_dir();
        let series_path = dir.join("durable.bin");
        let data_dir = dir.join("durable_wal");
        let _ = std::fs::remove_dir_all(&data_dir);
        write_series(&series_path);
        let args = argv(&[
            "--series",
            series_path.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--duration",
            "1",
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--fsync",
            "never",
        ]);
        // First boot seeds from the series and checkpoints on shutdown;
        // the second boot must recover from that checkpoint instead.
        run(&args).unwrap();
        crate::commands::wal::run(&argv(&[
            "--dir",
            data_dir.to_str().unwrap(),
            "--op",
            "verify",
        ]))
        .unwrap();
        run(&args).unwrap();
        std::fs::remove_dir_all(&data_dir).unwrap();
    }

    #[test]
    fn sharded_durable_serve_recovers_across_restarts() {
        let dir = temp_dir();
        let series_path = dir.join("sharded.bin");
        let data_dir = dir.join("sharded_wal");
        let _ = std::fs::remove_dir_all(&data_dir);
        write_series(&series_path);
        let args = argv(&[
            "--series",
            series_path.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--shards",
            "2",
            "--duration",
            "1",
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--fsync",
            "never",
        ]);
        run(&args).unwrap();
        assert!(
            data_dir.join("shard-000").is_dir() && data_dir.join("shard-001").is_dir(),
            "sharded data dir must hold per-shard subtrees"
        );
        crate::commands::wal::run(&argv(&[
            "--dir",
            data_dir.to_str().unwrap(),
            "--op",
            "verify",
        ]))
        .unwrap();
        run(&args).unwrap();
        // reopening with a different shard count must refuse, not reshard
        let mut mismatched = args.clone();
        let at = mismatched.iter().position(|a| a == "--shards").unwrap();
        mismatched[at + 1] = "3".to_string();
        assert!(run(&mismatched).is_err());
        std::fs::remove_dir_all(&data_dir).unwrap();
    }

    #[test]
    fn input_validation() {
        assert!(matches!(run(&argv(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&argv(&["--series", "x", "--workers", "lots"])),
            Err(CliError::Usage(_))
        ));
        assert!(run(&argv(&["--series", "/nonexistent/series.bin"])).is_err());
    }
}
