//! `qrank model` — print the user-visitation model's curves (the
//! paper's Figures 1–3) as TSV series, plus custom-parameter curves.

use qrank_model::popularity::{
    popularity_series, quality_estimate_series, relative_increase_series,
};
use qrank_model::ModelParams;

use crate::args::{parse, write_output, CliError};

const USAGE: &str = "\
qrank model [options]

options:
  --figure N      1, 2 or 3: reproduce the paper's figure parameters
  --quality Q     custom curve: page quality in (0, 1]
  --p0 P          custom curve: initial popularity (default 1e-6)
  --visit-ratio R custom curve: r/n (default 1.0)
  --t-max T       time horizon (default: figure-appropriate)
  --steps K       samples (default 100)
  --out FILE      TSV output (default stdout)

give either --figure or --quality.";

/// Entry point.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let allowed = [
        "figure",
        "quality",
        "p0",
        "visit-ratio",
        "t-max",
        "steps",
        "out",
    ];
    let p = parse(argv, &allowed, USAGE)?;
    if p.help {
        println!("{USAGE}");
        return Ok(());
    }
    let steps: usize = p.get_or("steps", 100, USAGE)?;

    let (params, t_max, which) = match (p.get("figure"), p.get("quality")) {
        (Some(fig), None) => match fig {
            "1" => (ModelParams::figure1(), 40.0, 1u8),
            "2" => (ModelParams::figure2(), 150.0, 2),
            "3" => (ModelParams::figure2(), 150.0, 3),
            other => return Err(CliError::usage(format!("unknown figure `{other}`"), USAGE)),
        },
        (None, Some(_)) => {
            let q: f64 = p.get_or("quality", 0.5, USAGE)?;
            let p0: f64 = p.get_or("p0", 1e-6, USAGE)?;
            let vr: f64 = p.get_or("visit-ratio", 1.0, USAGE)?;
            let params = ModelParams::new(q, 1.0, vr, p0)
                .map_err(|e| CliError::usage(e.to_string(), USAGE))?;
            (params, 0.0, 0)
        }
        _ => return Err(CliError::usage("give either --figure or --quality", USAGE)),
    };
    let t_max: f64 = p.get_or(
        "t-max",
        if t_max > 0.0 {
            t_max
        } else {
            // heuristic horizon: well past saturation
            3.0 * (params.quality / params.initial_popularity).ln()
                / (params.visit_ratio() * params.quality)
        },
        USAGE,
    )?;

    let mut out = String::new();
    match which {
        2 => {
            out.push_str("t\tI\tP\n");
            let i_series = relative_increase_series(&params, t_max, steps);
            let p_series = popularity_series(&params, t_max, steps);
            for ((t, i), (_, pop)) in i_series.into_iter().zip(p_series) {
                out.push_str(&format!("{t:.4}\t{i:.8}\t{pop:.8}\n"));
            }
        }
        3 => {
            out.push_str("t\tI_plus_P\n");
            for (t, q) in quality_estimate_series(&params, t_max, steps) {
                out.push_str(&format!("{t:.4}\t{q:.10}\n"));
            }
        }
        _ => {
            out.push_str("t\tP\n");
            for (t, pop) in popularity_series(&params, t_max, steps) {
                out.push_str(&format!("{t:.4}\t{pop:.8}\n"));
            }
        }
    }
    write_output(p.get("out"), &out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn temp_file(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qrank_cli_test_model");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn figure_curves() {
        for fig in ["1", "2", "3"] {
            let out = temp_file(&format!("fig{fig}.tsv"));
            run(&argv(&[
                "--figure",
                fig,
                "--steps",
                "10",
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap();
            let text = std::fs::read_to_string(&out).unwrap();
            assert_eq!(
                text.lines().count(),
                12,
                "header + 11 samples for fig {fig}"
            );
        }
    }

    #[test]
    fn custom_curve_saturates_at_quality() {
        let out = temp_file("custom.tsv");
        run(&argv(&[
            "--quality",
            "0.6",
            "--p0",
            "0.001",
            "--steps",
            "50",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let last = text.lines().last().unwrap();
        let p: f64 = last.split('\t').nth(1).unwrap().parse().unwrap();
        assert!((p - 0.6).abs() < 0.01, "saturation at {p}");
    }

    #[test]
    fn validation() {
        assert!(matches!(run(&argv(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&argv(&["--figure", "9"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv(&["--quality", "2.0"])),
            Err(CliError::Usage(_))
        ));
    }
}
