//! `qrank estimate` — run the paper's quality-estimation pipeline on a
//! snapshot series.
//!
//! Input is either a binary series produced by `qrank simulate`
//! (`--series`) or a comma-separated list of edge-list files with
//! capture times (`--graphs` + `--times`); in the latter case node ids
//! act as stable page ids across snapshots.

use qrank_core::smoothing::AdaptiveWindow;
use qrank_core::{
    run_pipeline_with, CurrentPopularity, DerivativeOnly, PaperEstimator, PipelineEngine,
    PipelineReport, PopularityMetric, QualityEstimator,
};
use qrank_graph::io::{decode_series, read_edge_list};
use qrank_graph::{PageId, Snapshot, SnapshotSeries};

use crate::args::{parse, write_output, CliError};

const USAGE: &str = "\
qrank estimate (--series <file> | --graphs <f1,f2,...> --times <t1,t2,...>) [options]

options:
  --series FILE     binary snapshot series from `qrank simulate`
  --graphs LIST     comma-separated edge-list files (node id = page id)
  --times LIST      comma-separated capture times, one per graph
  --c C             Equation 1 constant (default 0.1, the paper's value)
  --estimator E     paper | adaptive | derivative | current (default paper)
  --metric M        pagerank | indegree (default pagerank)
  --min-change X    report filter on relative change (default 0.05)
  --window W        slide a W-snapshot window through the series via one
                    stage engine, printing per-step cache stats; the
                    printed report comes from the final window (W >= 3)
  --threads T       align-stage/solver worker threads (default:
                    QRANK_THREADS or available parallelism; results are
                    bitwise identical at every setting)
  --out FILE        per-page TSV: page, trend, current, estimate, future, errors
  --top K           also print the top K pages by estimated quality

the LAST snapshot is held out as the future reference, as in the paper.";

/// Entry point.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let allowed = [
        "series",
        "graphs",
        "times",
        "c",
        "estimator",
        "metric",
        "min-change",
        "window",
        "threads",
        "out",
        "top",
    ];
    let p = parse(argv, &allowed, USAGE)?;
    if p.help {
        println!("{USAGE}");
        return Ok(());
    }
    let series = load_series(&p)?;

    let metric = match p.get("metric").unwrap_or("pagerank") {
        "pagerank" => PopularityMetric::paper_pagerank(),
        "indegree" => PopularityMetric::InDegree,
        other => return Err(CliError::usage(format!("unknown metric `{other}`"), USAGE)),
    };
    let c: f64 = p.get_or("c", 0.1, USAGE)?;
    let min_change: f64 = p.get_or("min-change", 0.05, USAGE)?;
    let paper = PaperEstimator {
        c,
        flat_tolerance: 0.0,
    };
    let adaptive = AdaptiveWindow {
        c,
        threshold: 1.0,
        flat_tolerance: 0.0,
    };
    let derivative = DerivativeOnly {
        c,
        flat_tolerance: 0.0,
    };
    let current = CurrentPopularity;
    let estimator: &dyn QualityEstimator = match p.get("estimator").unwrap_or("paper") {
        "paper" => &paper,
        "adaptive" => &adaptive,
        "derivative" => &derivative,
        "current" => &current,
        other => {
            return Err(CliError::usage(
                format!("unknown estimator `{other}`"),
                USAGE,
            ))
        }
    };
    let threads: usize = p.get_or("threads", 0, USAGE)?;
    if threads > 0 {
        qrank_rank::set_thread_budget(threads);
    }
    let window: usize = p.get_or("window", 0, USAGE)?;
    let report = if window > 0 {
        sliding_sweep(&series, window, &metric, estimator, min_change)?
    } else {
        run_pipeline_with(&series, &metric, estimator, min_change)
            .map_err(|e| CliError::Runtime(e.to_string()))?
    };

    println!(
        "{} snapshots, {} common pages, {} selected (changed > {:.0}%), estimator `{}`",
        series.len(),
        report.pages.len(),
        report.num_selected(),
        100.0 * min_change,
        estimator.name()
    );
    println!(
        "mean relative error vs future: quality estimate {:.4}, current popularity {:.4} (x{:.2})",
        report.summary_estimate.mean_error,
        report.summary_current.mean_error,
        report.improvement_factor()
    );

    if let Some(out) = p.get("out") {
        write_output(Some(out), &qrank_core::report::render_tsv(&report))?;
        eprintln!("wrote per-page report to {out}");
    }

    let top: usize = p.get_or("top", 0, USAGE)?;
    if top > 0 {
        let mut order: Vec<usize> = (0..report.pages.len()).collect();
        order.sort_by(|&a, &b| {
            report.estimates[b]
                .partial_cmp(&report.estimates[a])
                .expect("no NaN")
                .then(a.cmp(&b))
        });
        println!("\ntop {top} pages by estimated quality:");
        for &i in order.iter().take(top) {
            println!(
                "  {}  estimate {:.4}  (current {:.4}, trend {:?})",
                report.pages[i], report.estimates[i], report.current[i], report.trends[i]
            );
        }
    }
    Ok(())
}

/// Slide a `window`-snapshot window from the start of the series to its
/// end through a single [`PipelineEngine`], printing how much of each
/// step the fingerprint-keyed stage caches absorbed. The returned report
/// is the final window's — identical to a cold pipeline run on that
/// window.
fn sliding_sweep(
    series: &SnapshotSeries,
    window: usize,
    metric: &PopularityMetric,
    estimator: &dyn QualityEstimator,
    min_change: f64,
) -> Result<PipelineReport, CliError> {
    if window < 3 {
        return Err(CliError::usage(
            format!("--window must be at least 3 (got {window})"),
            USAGE,
        ));
    }
    if window > series.len() {
        return Err(CliError::usage(
            format!(
                "--window {window} exceeds the series length {}",
                series.len()
            ),
            USAGE,
        ));
    }
    let mut engine = PipelineEngine::new(metric.clone());
    let mut report = None;
    for end in window..=series.len() {
        let mut win = SnapshotSeries::new();
        for snap in &series.snapshots()[end - window..end] {
            win.push(snap.clone())
                .map_err(|e| CliError::Runtime(e.to_string()))?;
        }
        let r = engine
            .run(&win, estimator, min_change)
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        let stats = engine.stats();
        println!(
            "window [{}..{}): {} columns solved, {} reused ({} aligned snapshots rebuilt)",
            end - window,
            end,
            stats.columns_solved(),
            stats.columns_reused(),
            stats.restrict_misses
        );
        report = Some(r);
    }
    report.ok_or_else(|| CliError::Runtime("empty sweep".into()))
}

fn load_series(p: &crate::args::Parsed) -> Result<SnapshotSeries, CliError> {
    match (p.get("series"), p.get("graphs")) {
        (Some(path), None) => {
            let bytes = std::fs::read(path)?;
            decode_series(&bytes).map_err(|e| CliError::Runtime(e.to_string()))
        }
        (None, Some(list)) => {
            let files: Vec<&str> = list.split(',').collect();
            let times_raw = p.require("times", USAGE)?;
            let times: Result<Vec<f64>, _> = times_raw
                .split(',')
                .map(|t| t.trim().parse::<f64>())
                .collect();
            let times = times.map_err(|e| CliError::usage(format!("bad --times: {e}"), USAGE))?;
            if times.len() != files.len() {
                return Err(CliError::usage(
                    format!("{} graphs but {} times", files.len(), times.len()),
                    USAGE,
                ));
            }
            let mut series = SnapshotSeries::new();
            for (file, &t) in files.iter().zip(&times) {
                let text = std::fs::read_to_string(file)?;
                let g = read_edge_list(text.as_bytes())
                    .map_err(|e| CliError::Runtime(format!("{file}: {e}")))?;
                let pages: Vec<PageId> = (0..g.num_nodes() as u64).map(PageId).collect();
                let snap =
                    Snapshot::new(t, g, pages).map_err(|e| CliError::Runtime(e.to_string()))?;
                series
                    .push(snap)
                    .map_err(|e| CliError::Runtime(e.to_string()))?;
            }
            Ok(series)
        }
        (Some(_), Some(_)) => Err(CliError::usage(
            "give either --series or --graphs, not both",
            USAGE,
        )),
        (None, None) => Err(CliError::usage("need --series or --graphs", USAGE)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qrank_cli_test_est");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_growing_snapshots() -> Vec<std::path::PathBuf> {
        let dir = temp_dir();
        let snapshots = [
            "# nodes: 5\n0 1\n1 0\n2 0\n3 1\n",
            "# nodes: 5\n0 1\n1 0\n2 0\n3 1\n3 4\n",
            "# nodes: 5\n0 1\n1 0\n2 0\n3 1\n3 4\n2 4\n",
            "# nodes: 5\n0 1\n1 0\n2 0\n3 1\n3 4\n2 4\n1 4\n",
        ];
        snapshots
            .iter()
            .enumerate()
            .map(|(i, text)| {
                let path = dir.join(format!("s{i}.edges"));
                std::fs::write(&path, text).unwrap();
                path
            })
            .collect()
    }

    #[test]
    fn estimates_from_edge_list_snapshots() {
        let files = write_growing_snapshots();
        let list = files
            .iter()
            .map(|p| p.to_str().unwrap().to_string())
            .collect::<Vec<_>>()
            .join(",");
        let out = temp_dir().join("report.tsv");
        run(&argv(&[
            "--graphs",
            &list,
            "--times",
            "0,1,2,6",
            "--out",
            out.to_str().unwrap(),
            "--top",
            "3",
        ]))
        .unwrap();
        let tsv = std::fs::read_to_string(&out).unwrap();
        assert_eq!(tsv.lines().count(), 6); // header + 5 pages
        assert!(tsv.contains("Increasing"));
    }

    #[test]
    fn estimates_from_binary_series() {
        // produce a series via the simulate command, then estimate
        let dir = temp_dir();
        let series_path = dir.join("sim.bin");
        crate::commands::simulate::run(&argv(&[
            "--out",
            series_path.to_str().unwrap(),
            "--users",
            "120",
            "--sites",
            "3",
            "--birth-rate",
            "5",
            "--burn-in",
            "2",
            "--future",
            "3",
        ]))
        .unwrap();
        run(&argv(&[
            "--series",
            series_path.to_str().unwrap(),
            "--c",
            "1.0",
        ]))
        .unwrap();
    }

    #[test]
    fn estimator_variants_run() {
        let files = write_growing_snapshots();
        let list = files
            .iter()
            .map(|p| p.to_str().unwrap().to_string())
            .collect::<Vec<_>>()
            .join(",");
        for est in ["paper", "adaptive", "derivative", "current"] {
            run(&argv(&[
                "--graphs",
                &list,
                "--times",
                "0,1,2,6",
                "--estimator",
                est,
            ]))
            .unwrap_or_else(|e| panic!("{est}: {e}"));
        }
        assert!(matches!(
            run(&argv(&[
                "--graphs",
                &list,
                "--times",
                "0,1,2,6",
                "--estimator",
                "magic"
            ])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn sliding_window_sweep_runs_and_validates() {
        let files = write_growing_snapshots();
        let list = files
            .iter()
            .map(|p| p.to_str().unwrap().to_string())
            .collect::<Vec<_>>()
            .join(",");
        run(&argv(&[
            "--graphs", &list, "--times", "0,1,2,6", "--window", "3",
        ]))
        .unwrap();
        // a window as long as the series degenerates to one cold run
        run(&argv(&[
            "--graphs", &list, "--times", "0,1,2,6", "--window", "4",
        ]))
        .unwrap();
        for bad in ["2", "9"] {
            assert!(matches!(
                run(&argv(&[
                    "--graphs", &list, "--times", "0,1,2,6", "--window", bad,
                ])),
                Err(CliError::Usage(_))
            ));
        }
    }

    #[test]
    fn input_validation() {
        assert!(matches!(run(&argv(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&argv(&["--graphs", "a,b", "--times", "0"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv(&["--series", "x", "--graphs", "y", "--times", "0"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv(&["--graphs", "a,b,c", "--times", "0,1,x"])),
            Err(CliError::Usage(_))
        ));
    }
}
