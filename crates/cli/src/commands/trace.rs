//! `qrank trace` — scrape request traces and SLO status from a running
//! `qrank serve` instance (started with `--trace-sample N`).
//!
//! Speaks the serve protocol's `trace` verb. The default mode fetches
//! the human-readable `trace report` (multi-line, `# EOF`-terminated)
//! — sampling counters, per-verb latency summaries with burn rates,
//! and the slowest retained traces with a per-stage latency-attribution
//! breakdown. `--slo`, `--verb`, and `--id` fetch the matching one-line
//! JSON answers instead, for scripting.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::args::{parse_with_flags, write_output, CliError};

const USAGE: &str = "\
qrank trace --addr <host:port> [options]

options:
  --addr HOST:PORT   a running `qrank serve` started with --trace-sample
  --verb V           JSON: slowest retained traces for one verb
                     (score | topk | stats | metrics | health | trace |
                      error | refresh | recover)
  --id N             JSON: one retained trace by id
  --slo              JSON: SLO status (objectives, per-verb latency
                     summaries, multi-window burn rates, exemplars)
  --out FILE         write the answer to FILE (default stdout)

with no mode flag, fetches the human-readable `trace report`: sampling
counters, per-verb SLO summaries, and the slowest traces with their
stage-by-stage latency attribution.";

/// Entry point.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let allowed = ["addr", "verb", "id", "out"];
    let p = parse_with_flags(argv, &allowed, &["slo"], USAGE)?;
    if p.help {
        println!("{USAGE}");
        return Ok(());
    }
    let addr = p.require("addr", USAGE)?;
    let modes = [p.get("verb").is_some(), p.get("id").is_some(), p.has("slo")]
        .iter()
        .filter(|&&m| m)
        .count();
    if modes > 1 {
        return Err(CliError::usage(
            "--verb, --id, and --slo are mutually exclusive",
            USAGE,
        ));
    }
    let request = if let Some(verb) = p.get("verb") {
        format!("trace slowest {verb}")
    } else if p.get("id").is_some() {
        let id: u64 = p.get_or("id", 0, USAGE)?;
        format!("trace id {id}")
    } else if p.has("slo") {
        "trace slo".to_string()
    } else {
        "trace report".to_string()
    };
    let answer = fetch(addr, &request)?;
    if answer.starts_with(r#"{"ok":false"#) {
        return Err(CliError::Runtime(format!("{addr}: {answer}")));
    }
    write_output(p.get("out"), &format!("{answer}\n"))?;
    Ok(())
}

/// Send one `trace` request. Single-line JSON answers return as-is;
/// the multi-line `trace report` is collected up to its `# EOF`
/// terminator (terminator stripped).
fn fetch(addr: &str, request: &str) -> Result<String, CliError> {
    let stream = TcpStream::connect(addr).map_err(|e| CliError::Runtime(format!("{addr}: {e}")))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| CliError::Runtime(e.to_string()))?,
    );
    let mut writer = stream;
    writer.write_all(request.as_bytes())?;
    writer.write_all(b"\n")?;
    let multiline = request == "trace report";
    let mut text = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(CliError::Runtime(format!(
                "{addr}: connection closed mid-response"
            )));
        }
        if multiline && line.trim_end() == "# EOF" {
            break;
        }
        text.push_str(&line);
        if !multiline {
            break;
        }
        // a single-line error still ends the exchange (e.g. tracing
        // disabled on the server)
        if text.starts_with(r#"{"ok":false"#) {
            break;
        }
    }
    Ok(text.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use qrank_serve::{serve, ServerConfig, ShardedStore};

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn start_traced_server() -> qrank_serve::ServerHandle {
        qrank_obs::set_enabled(true);
        serve(
            Arc::new(ShardedStore::new(1)),
            &ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 1,
                cache_capacity: 4,
                trace_sample: 1,
                slo_latency_us: 1_000,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn scrapes_report_slo_and_verb_json() {
        let server = start_traced_server();
        let addr = server.addr().to_string();
        // drive traffic through the server's own protocol first
        fetch(&addr, "health").unwrap();
        fetch(&addr, "health").unwrap();

        let dir = std::env::temp_dir().join("qrank_cli_test_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("report.txt");
        run(&argv(&["--addr", &addr, "--out", out.to_str().unwrap()])).unwrap();
        let report = std::fs::read_to_string(&out).unwrap();
        assert!(report.contains("slowest traces:"), "{report}");
        assert!(!report.contains("# EOF"), "terminator is stripped");

        run(&argv(&[
            "--addr",
            &addr,
            "--slo",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let slo = std::fs::read_to_string(&out).unwrap();
        assert!(slo.contains(r#""slo":"#), "{slo}");

        run(&argv(&[
            "--addr",
            &addr,
            "--verb",
            "health",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let traces = std::fs::read_to_string(&out).unwrap();
        assert!(traces.contains(r#""verb":"health""#), "{traces}");

        server.shutdown();
        qrank_obs::set_enabled(false);
    }

    #[test]
    fn untraced_server_yields_a_runtime_error() {
        let server = serve(
            Arc::new(ShardedStore::new(1)),
            &ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 1,
                cache_capacity: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr().to_string();
        let err = run(&argv(&["--addr", &addr])).unwrap_err();
        assert!(matches!(err, CliError::Runtime(msg) if msg.contains("tracing disabled")));
        server.shutdown();
    }

    #[test]
    fn input_validation() {
        assert!(matches!(run(&argv(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&argv(&["--addr", "127.0.0.1:1", "--slo", "--id", "3"])),
            Err(CliError::Usage(_))
        ));
        // nothing listens on port 9
        assert!(run(&argv(&["--addr", "127.0.0.1:9"])).is_err());
    }
}
