//! `qrank pagerank` — score a graph.

use qrank_graph::io::read_edge_list;
use qrank_rank::{
    colored_gauss_seidel, gauss_seidel, hits, indegree_scores, opic, pagerank, parallel_pagerank,
    solve_auto_with, OpicPolicy, PageRankConfig, ScoreScale,
};

use crate::args::{parse, write_output, CliError};

const USAGE: &str = "\
qrank pagerank --graph <file> [options]

options:
  --graph FILE     input edge list
  --solver NAME    auto | power | gauss-seidel | colored | parallel | hits |
                   indegree | opic (default power; `auto` picks the fastest
                   PageRank solver for the graph size and thread budget)
  --damping D      paper-style damping d = teleport probability (default 0.15)
  --scale S        probability | per-page (default per-page, as in the paper)
  --threads T      parallel solver threads (default 4)
  --top K          print only the top K pages (default: all)
  --out FILE       write `node<TAB>score` TSV (default stdout)
  --trace FILE     write the solver's per-iteration convergence trace as
                   `iter<TAB>residual` TSV (PageRank solvers only —
                   power, gauss-seidel, colored, parallel, auto)";

/// Entry point.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let allowed = [
        "graph", "solver", "damping", "scale", "threads", "top", "out", "trace",
    ];
    let p = parse(argv, &allowed, USAGE)?;
    if p.help {
        println!("{USAGE}");
        return Ok(());
    }
    let path = p.require("graph", USAGE)?;
    let text = std::fs::read_to_string(path)?;
    let g = read_edge_list(text.as_bytes()).map_err(|e| CliError::Runtime(e.to_string()))?;

    let damping: f64 = p.get_or("damping", 0.15, USAGE)?;
    let scale = match p.get("scale").unwrap_or("per-page") {
        "probability" => ScoreScale::Probability,
        "per-page" => ScoreScale::PerPage,
        other => return Err(CliError::usage(format!("unknown scale `{other}`"), USAGE)),
    };
    let cfg = PageRankConfig {
        scale,
        ..PageRankConfig::paper_style(damping)
    };

    let solver = p.get("solver").unwrap_or("power");
    // PageRank solvers report per-iteration residuals; the other
    // rankers have no convergence trace to write.
    let (scores, residuals) = match solver {
        "power" => {
            let r = pagerank(&g, &cfg);
            (r.scores, Some(r.residuals))
        }
        "gauss-seidel" => {
            let r = gauss_seidel(&g, &cfg);
            (r.scores, Some(r.residuals))
        }
        "auto" => {
            let threads: usize = p.get_or("threads", 4, USAGE)?;
            let r = solve_auto_with(&g, &cfg, None, threads);
            (r.scores, Some(r.residuals))
        }
        "colored" => {
            let threads: usize = p.get_or("threads", 4, USAGE)?;
            let r = colored_gauss_seidel(&g, &cfg, threads);
            (r.scores, Some(r.residuals))
        }
        "parallel" => {
            let threads: usize = p.get_or("threads", 4, USAGE)?;
            let r = parallel_pagerank(&g, &cfg, threads);
            (r.scores, Some(r.residuals))
        }
        "hits" => (hits(&g, 1e-10, 200).authorities, None),
        "indegree" => (indegree_scores(&g), None),
        "opic" => (
            opic(
                &g,
                1.0 - damping,
                g.num_nodes() * 50,
                OpicPolicy::RoundRobin,
            )
            .scores,
            None,
        ),
        other => return Err(CliError::usage(format!("unknown solver `{other}`"), USAGE)),
    };

    if let Some(trace_path) = p.get("trace") {
        let Some(residuals) = &residuals else {
            return Err(CliError::usage(
                format!("solver `{solver}` has no per-iteration residual trace"),
                USAGE,
            ));
        };
        let mut trace = String::new();
        for (i, r) in residuals.iter().enumerate() {
            trace.push_str(&format!("{}\t{r:.6e}\n", i + 1));
        }
        write_output(Some(trace_path), &trace)?;
        eprintln!("{} iterations traced to {trace_path}", residuals.len());
    }

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("no NaN")
            .then(a.cmp(&b))
    });
    let top: usize = p.get_or("top", scores.len(), USAGE)?;
    let mut out = String::new();
    for &node in order.iter().take(top) {
        out.push_str(&format!("{node}\t{:.10}\n", scores[node]));
    }
    write_output(p.get("out"), &out)?;
    eprintln!("{} nodes scored with `{solver}`", scores.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn write_sample_graph() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qrank_cli_test_pr");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        std::fs::write(&path, "# nodes: 4\n0 1\n1 2\n2 0\n3 0\n").unwrap();
        path
    }

    #[test]
    fn scores_all_solvers() {
        let path = write_sample_graph();
        let dir = path.parent().unwrap();
        for solver in [
            "power",
            "gauss-seidel",
            "auto",
            "colored",
            "parallel",
            "hits",
            "indegree",
            "opic",
        ] {
            let out = dir.join(format!("{solver}.tsv"));
            run(&argv(&[
                "--graph",
                path.to_str().unwrap(),
                "--solver",
                solver,
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap_or_else(|e| panic!("{solver}: {e}"));
            let text = std::fs::read_to_string(&out).unwrap();
            assert_eq!(text.lines().count(), 4, "{solver}");
        }
    }

    #[test]
    fn top_k_limits_output() {
        let path = write_sample_graph();
        let out = path.parent().unwrap().join("top.tsv");
        run(&argv(&[
            "--graph",
            path.to_str().unwrap(),
            "--top",
            "2",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(std::fs::read_to_string(&out).unwrap().lines().count(), 2);
    }

    #[test]
    fn trace_writes_one_residual_per_iteration() {
        let path = write_sample_graph();
        let dir = path.parent().unwrap();
        for solver in ["power", "auto"] {
            let trace = dir.join(format!("{solver}.trace.tsv"));
            run(&argv(&[
                "--graph",
                path.to_str().unwrap(),
                "--solver",
                solver,
                "--trace",
                trace.to_str().unwrap(),
                "--out",
                dir.join("scores.tsv").to_str().unwrap(),
            ]))
            .unwrap();
            let text = std::fs::read_to_string(&trace).unwrap();
            assert!(text.lines().count() > 1, "{solver}: {text}");
            let first = text.lines().next().unwrap();
            assert!(first.starts_with("1\t"), "{solver}: {first}");
        }
    }

    #[test]
    fn trace_rejects_solvers_without_residuals() {
        let path = write_sample_graph();
        assert!(matches!(
            run(&argv(&[
                "--graph",
                path.to_str().unwrap(),
                "--solver",
                "indegree",
                "--trace",
                "/tmp/never-written.tsv",
            ])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn missing_file_is_runtime_error() {
        assert!(matches!(
            run(&argv(&["--graph", "/nonexistent/file.edges"])),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn bad_solver_is_usage_error() {
        let path = write_sample_graph();
        assert!(matches!(
            run(&argv(&[
                "--graph",
                path.to_str().unwrap(),
                "--solver",
                "magic"
            ])),
            Err(CliError::Usage(_))
        ));
    }
}
