//! `qrank wal` — offline inspection of a durability directory.
//!
//! Operates on the directory given to `qrank serve --data-dir` without
//! the server running: list its segments and checkpoints, validate every
//! checksum and the LSN chain end to end, or compact away files the
//! newest checkpoint has made redundant.

use std::path::Path;

use qrank_wal::{decode_delta, inspect, scan, Wal, WalOptions};

use crate::args::{parse, CliError};

const USAGE: &str = "\
qrank wal --dir <dir> [options]

options:
  --dir DIR   WAL directory (as given to `qrank serve --data-dir`) (required)
  --op OP     inspect | verify | compact (default inspect)

a data directory written by `qrank serve --shards N` (N > 1) holds one
`shard-NNN/` WAL subtree per shard; the op is applied to every subtree
automatically, and `verify` additionally checks the cross-shard
invariant (no shard's log may end before shard 000's checkpoint).

ops:
  inspect  list segments and checkpoints with record counts (read-only)
  verify   full read-only validation: segment chain, every CRC, every
           record payload decoded, checkpoint coverage
  compact  write-side maintenance: drop segments and old checkpoints
           wholly covered by the newest checkpoint";

/// Entry point.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let p = parse(argv, &["dir", "op"], USAGE)?;
    if p.help {
        println!("{USAGE}");
        return Ok(());
    }
    let dir = Path::new(p.require("dir", USAGE)?);
    let op = p.get("op").unwrap_or("inspect");
    if !matches!(op, "inspect" | "verify" | "compact") {
        return Err(CliError::Usage(format!(
            "unknown op `{op}` (expected inspect, verify, or compact)\n\n{USAGE}"
        )));
    }
    let shards = shard_subtrees(dir)?;
    if shards.is_empty() {
        return match op {
            "inspect" => run_inspect(dir),
            "verify" => run_verify(dir),
            _ => run_compact(dir),
        };
    }
    println!("sharded data directory: {} shard subtree(s)", shards.len());
    for (i, sub) in shards.iter().enumerate() {
        println!("-- shard {i:03} --");
        match op {
            "inspect" => run_inspect(sub)?,
            "verify" => run_verify(sub)?,
            _ => run_compact(sub)?,
        }
    }
    if op == "verify" {
        verify_ensemble(&shards)?;
    }
    Ok(())
}

/// Detect `shard-NNN/` subtrees under `dir`. An empty result means a
/// flat (unsharded) layout; a non-contiguous numbering is an error.
fn shard_subtrees(dir: &Path) -> Result<Vec<std::path::PathBuf>, CliError> {
    let mut found: Vec<(usize, std::path::PathBuf)> = Vec::new();
    if dir.is_dir() {
        for entry in std::fs::read_dir(dir).map_err(|e| CliError::Runtime(e.to_string()))? {
            let entry = entry.map_err(|e| CliError::Runtime(e.to_string()))?;
            let name = entry.file_name();
            let Some(rest) = name.to_str().and_then(|n| n.strip_prefix("shard-")) else {
                continue;
            };
            if let Ok(i) = rest.parse::<usize>() {
                if entry.path().is_dir() {
                    found.push((i, entry.path()));
                }
            }
        }
    }
    found.sort();
    for (want, (got, path)) in found.iter().enumerate() {
        if *got != want {
            return Err(CliError::Runtime(format!(
                "shard subtrees are not contiguous from shard-000: found {}",
                path.display()
            )));
        }
    }
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

/// The cross-shard invariant recovery relies on: shard 000's newest
/// valid checkpoint at LSN L promises every shard is durable through L
/// (the ensemble syncs all shards before shard 0 checkpoints), so a
/// shard log ending before L is corruption, while logs ending at
/// *different* LSNs past L are expected crash overhang that recovery
/// truncates to the common horizon.
fn verify_ensemble(shards: &[std::path::PathBuf]) -> Result<(), CliError> {
    let mut next_lsns = Vec::with_capacity(shards.len());
    let mut ckpt0 = None;
    for (i, sub) in shards.iter().enumerate() {
        let insp = inspect(sub).map_err(|e| CliError::Runtime(e.to_string()))?;
        next_lsns.push(insp.segments.last().map_or(0, |s| s.first_lsn + s.records));
        if i == 0 {
            ckpt0 = insp
                .checkpoints
                .iter()
                .rev()
                .find(|c| c.valid)
                .map(|c| c.lsn);
        }
    }
    let horizon = next_lsns.iter().copied().min().unwrap_or(0);
    if let Some(lsn) = ckpt0 {
        if let Some((i, &short)) = next_lsns.iter().enumerate().find(|&(_, &n)| n < lsn) {
            return Err(CliError::Runtime(format!(
                "shard {i:03} log ends at LSN {short}, before shard 000's checkpoint at LSN {lsn}"
            )));
        }
    }
    if next_lsns.iter().any(|&n| n != horizon) {
        println!(
            "note: shard logs end at different LSNs {next_lsns:?}; \
             recovery will truncate to the common horizon {horizon}"
        );
    }
    println!(
        "ok: ensemble of {} shard(s) coherent through LSN {horizon}",
        shards.len()
    );
    Ok(())
}

fn run_inspect(dir: &Path) -> Result<(), CliError> {
    let insp = inspect(dir).map_err(|e| CliError::Runtime(e.to_string()))?;
    for seg in &insp.segments {
        let torn = seg
            .torn
            .as_deref()
            .map(|r| format!("  [torn tail: {r}]"))
            .unwrap_or_default();
        println!(
            "segment {:>6}  lsn {:>8}..{:<8}  {:>6} records  {:>10} bytes{torn}",
            seg.seq,
            seg.first_lsn,
            seg.first_lsn + seg.records,
            seg.records,
            seg.bytes,
        );
    }
    for ck in &insp.checkpoints {
        let status = if ck.valid { "" } else { "  [INVALID]" };
        println!(
            "checkpoint {:>3}  covers lsn {:>8}  {:>10} payload bytes{status}",
            ck.seq, ck.lsn, ck.payload_bytes,
        );
    }
    println!(
        "total: {} records in {} segment(s), {} checkpoint(s)",
        insp.total_records,
        insp.segments.len(),
        insp.checkpoints.len()
    );
    Ok(())
}

fn run_verify(dir: &Path) -> Result<(), CliError> {
    let (insp, records) = scan(dir).map_err(|e| CliError::Runtime(e.to_string()))?;
    let mut problems = Vec::new();
    for (lsn, payload) in &records {
        if let Err(e) = decode_delta(payload) {
            problems.push(format!("record at LSN {lsn} does not decode: {e}"));
        }
    }
    for ck in &insp.checkpoints {
        if !ck.valid {
            problems.push(format!("checkpoint {} failed validation", ck.seq));
        }
    }
    // The invariants recovery relies on: the newest valid checkpoint must
    // sit inside the surviving log, and with no checkpoint at all the log
    // must reach back to LSN 0.
    let next_lsn = insp.segments.last().map_or(0, |s| s.first_lsn + s.records);
    let oldest_lsn = insp.segments.first().map_or(0, |s| s.first_lsn);
    match insp.checkpoints.iter().rev().find(|c| c.valid) {
        Some(ck) => {
            if ck.lsn > next_lsn {
                problems.push(format!(
                    "checkpoint {} covers LSN {} but the log ends at {next_lsn}",
                    ck.seq, ck.lsn
                ));
            }
            if ck.lsn < oldest_lsn {
                problems.push(format!(
                    "checkpoint {} covers LSN {} but the oldest segment starts at {oldest_lsn}",
                    ck.seq, ck.lsn
                ));
            }
        }
        None => {
            if oldest_lsn > 0 {
                problems.push(format!(
                    "no valid checkpoint, yet the oldest segment starts at LSN {oldest_lsn}"
                ));
            }
        }
    }
    if let Some(seg) = insp.segments.iter().find(|s| s.torn.is_some()) {
        // Expected crash damage, repaired on the next open — worth an
        // operator's eyes but not a verification failure.
        println!(
            "note: segment {} has a torn tail (recovery will truncate it): {}",
            seg.seq,
            seg.torn.as_deref().unwrap_or_default()
        );
    }
    if problems.is_empty() {
        println!(
            "ok: {} record(s) in {} segment(s) verified, {} checkpoint(s) valid",
            records.len(),
            insp.segments.len(),
            insp.checkpoints.len()
        );
        Ok(())
    } else {
        Err(CliError::Runtime(problems.join("; ")))
    }
}

fn run_compact(dir: &Path) -> Result<(), CliError> {
    if !dir.is_dir() {
        return Err(CliError::Runtime(format!(
            "{} is not a directory",
            dir.display()
        )));
    }
    let (mut wal, recovery) =
        Wal::open(dir, WalOptions::default()).map_err(|e| CliError::Runtime(e.to_string()))?;
    if let Some(reason) = &recovery.torn_tail {
        println!("repaired torn tail: {reason}");
    }
    let removed = wal
        .compact()
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let stats = wal.stats();
    println!(
        "removed {removed} segment(s); {} segment(s) remain, next LSN {}",
        stats.segments, stats.next_lsn
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrank_wal::{encode_delta, DeltaRecord};

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qrank_cli_wal_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn build_log(dir: &std::path::Path, n: u64, checkpoint_at: Option<u64>) {
        let (mut wal, _) = Wal::open(dir, WalOptions::default()).unwrap();
        for i in 0..n {
            let rec = DeltaRecord {
                time: i as f64,
                new_pages: vec![i],
                added: vec![(i, i + 1)],
                ..Default::default()
            };
            wal.append(&encode_delta(&rec)).unwrap();
            if checkpoint_at == Some(i + 1) {
                wal.checkpoint(b"state").unwrap();
            }
        }
        wal.sync().unwrap();
    }

    #[test]
    fn inspect_verify_and_compact_round_trip() {
        let dir = tmpdir("roundtrip");
        build_log(&dir, 6, Some(4));
        let d = dir.to_str().unwrap();
        run(&argv(&["--dir", d])).unwrap();
        run(&argv(&["--dir", d, "--op", "verify"])).unwrap();
        run(&argv(&["--dir", d, "--op", "compact"])).unwrap();
        run(&argv(&["--dir", d, "--op", "verify"])).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_rejects_undecodable_records() {
        let dir = tmpdir("badpayload");
        {
            let (mut wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
            wal.append(b"not a delta record").unwrap();
            wal.sync().unwrap();
        }
        let d = dir.to_str().unwrap();
        // inspect only checks framing, so it passes; verify decodes.
        run(&argv(&["--dir", d])).unwrap();
        assert!(matches!(
            run(&argv(&["--dir", d, "--op", "verify"])),
            Err(CliError::Runtime(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_layout_is_detected_and_each_subtree_verified() {
        let dir = tmpdir("sharded");
        // Aligned ensemble: 4 records on each of 2 shards, a full
        // checkpoint on shard 0 at LSN 3 and a lag-one marker on shard 1.
        build_log(&dir.join("shard-000"), 4, Some(3));
        build_log(&dir.join("shard-001"), 4, None);
        let d = dir.to_str().unwrap();
        run(&argv(&["--dir", d])).unwrap();
        run(&argv(&["--dir", d, "--op", "verify"])).unwrap();
        run(&argv(&["--dir", d, "--op", "compact"])).unwrap();
        run(&argv(&["--dir", d, "--op", "verify"])).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_verify_rejects_a_shard_lagging_the_checkpoint() {
        let dir = tmpdir("sharded_lag");
        // Shard 0 checkpoints at LSN 5 but shard 1's log ends at 2: the
        // ensemble promise (all shards durable through the checkpoint)
        // is broken.
        build_log(&dir.join("shard-000"), 6, Some(5));
        build_log(&dir.join("shard-001"), 2, None);
        let d = dir.to_str().unwrap();
        assert!(matches!(
            run(&argv(&["--dir", d, "--op", "verify"])),
            Err(CliError::Runtime(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_contiguous_shard_numbering_is_rejected() {
        let dir = tmpdir("sharded_gap");
        build_log(&dir.join("shard-000"), 1, None);
        build_log(&dir.join("shard-002"), 1, None);
        assert!(matches!(
            run(&argv(&["--dir", dir.to_str().unwrap()])),
            Err(CliError::Runtime(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn input_validation() {
        assert!(matches!(run(&argv(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&argv(&["--dir", "/tmp", "--op", "defrag"])),
            Err(CliError::Usage(_))
        ));
        assert!(run(&argv(&["--dir", "/nonexistent/wal", "--op", "verify"])).is_err());
    }
}
