//! Subcommand implementations.

pub mod cohort;
pub mod estimate;
pub mod generate;
pub mod model;
pub mod pagerank;
pub mod simulate;
pub mod stats;
