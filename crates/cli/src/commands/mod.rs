//! Subcommand implementations.

pub mod bench_load;
pub mod chaos_test;
pub mod cohort;
pub mod estimate;
pub mod generate;
pub mod model;
pub mod obs_dump;
pub mod pagerank;
pub mod serve;
pub mod simulate;
pub mod stats;
pub mod trace;
pub mod wal;
