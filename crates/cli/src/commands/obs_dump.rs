//! `qrank obs-dump` — dump an observability snapshot as JSON.
//!
//! Two sources are supported. With `--addr` the command speaks the
//! serve protocol: it sends the `metrics` verb to a running server,
//! collects the Prometheus text exposition up to the `# EOF`
//! terminator, and either passes it through (`--format prom`) or
//! re-encodes each sample as a JSON object. With `--series` it runs
//! the quality-estimation pipeline locally with observability enabled
//! and writes the full in-process snapshot (registry, convergence
//! traces, flight-recorder events) from [`qrank_obs::dump_json`].

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use qrank_core::{run_pipeline_with, PaperEstimator, PopularityMetric};
use qrank_graph::io::decode_series;
use qrank_obs::json::{array, Obj};

use crate::args::{parse, write_output, CliError};

const USAGE: &str = "\
qrank obs-dump (--addr <host:port> | --series <file>) [options]

options:
  --addr HOST:PORT   fetch the `metrics` exposition from a running
                     `qrank serve` instance
  --series FILE      run the estimation pipeline on a snapshot series
                     locally (observability enabled) and dump the full
                     in-process snapshot
  --c C              Equation 1 constant for --series (default 0.1)
  --min-change X     report filter for --series (default 0.05)
  --format F         json | prom (default json)
  --out FILE         write the snapshot to FILE (default stdout)

json output from --addr is an array of {name, labels, value} samples;
json output from --series is the {registry, convergence, events}
snapshot. prom output is Prometheus text terminated by `# EOF`.";

/// Entry point.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let allowed = ["addr", "series", "c", "min-change", "format", "out"];
    let p = parse(argv, &allowed, USAGE)?;
    if p.help {
        println!("{USAGE}");
        return Ok(());
    }
    let format = p.get("format").unwrap_or("json");
    if !matches!(format, "json" | "prom") {
        return Err(CliError::usage(format!("unknown format `{format}`"), USAGE));
    }
    let text = match (p.get("addr"), p.get("series")) {
        (Some(addr), None) => {
            let prom = fetch_metrics(addr)?;
            match format {
                "prom" => prom,
                _ => prom_to_json(&prom),
            }
        }
        (None, Some(series_path)) => {
            let bytes = std::fs::read(series_path)?;
            let series = decode_series(&bytes).map_err(|e| CliError::Runtime(e.to_string()))?;
            let was_enabled = qrank_obs::enabled();
            qrank_obs::set_enabled(true);
            qrank_obs::reset();
            let metric = PopularityMetric::paper_pagerank();
            let estimator = PaperEstimator {
                c: p.get_or("c", 0.1, USAGE)?,
                flat_tolerance: 0.0,
            };
            let min_change: f64 = p.get_or("min-change", 0.05, USAGE)?;
            let result = run_pipeline_with(&series, &metric, &estimator, min_change);
            let dump = match format {
                "prom" => format!("{}# EOF", qrank_obs::global().snapshot().prometheus_text()),
                _ => qrank_obs::dump_json(),
            };
            qrank_obs::set_enabled(was_enabled);
            result.map_err(|e| CliError::Runtime(e.to_string()))?;
            dump
        }
        (Some(_), Some(_)) => {
            return Err(CliError::usage(
                "--addr and --series are mutually exclusive",
                USAGE,
            ))
        }
        (None, None) => return Err(CliError::usage("need --addr or --series", USAGE)),
    };
    write_output(p.get("out"), &format!("{text}\n"))?;
    Ok(())
}

/// Send the `metrics` verb and collect the exposition up to `# EOF`
/// (terminator included, trailing newline stripped).
fn fetch_metrics(addr: &str) -> Result<String, CliError> {
    let stream = TcpStream::connect(addr).map_err(|e| CliError::Runtime(format!("{addr}: {e}")))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| CliError::Runtime(e.to_string()))?,
    );
    let mut writer = stream;
    writer.write_all(b"metrics\n")?;
    let mut text = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(CliError::Runtime(format!(
                "{addr}: connection closed before `# EOF`"
            )));
        }
        text.push_str(&line);
        if line.trim_end() == "# EOF" {
            break;
        }
    }
    Ok(text.trim_end().to_string())
}

/// Re-encode Prometheus text samples as a JSON array of
/// `{name, labels?, value}` objects. Comment lines (`# TYPE`, `# EOF`)
/// are dropped; samples whose value does not parse as a float keep the
/// raw text under `"raw"` instead of `"value"`.
fn prom_to_json(prom: &str) -> String {
    let mut samples = Vec::new();
    for line in prom.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let (name, labels) = match key.split_once('{') {
            Some((name, rest)) => (name, rest.strip_suffix('}').unwrap_or(rest)),
            None => (key, ""),
        };
        let mut o = Obj::new();
        o.str("name", name);
        if !labels.is_empty() {
            o.str("labels", labels);
        }
        match value.parse::<f64>() {
            Ok(v) if v.is_finite() => o.num("value", v),
            _ => o.str("raw", value),
        };
        samples.push(o.finish());
    }
    array(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use qrank_serve::{serve, ServerConfig, ShardedStore};

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qrank_cli_test_obs_dump");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn start_server() -> qrank_serve::ServerHandle {
        serve(
            Arc::new(ShardedStore::new(1)),
            &ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 1,
                cache_capacity: 4,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn dumps_a_live_server_as_json_and_prom() {
        let server = start_server();
        let addr = server.addr().to_string();
        let dir = temp_dir();

        let json_out = dir.join("server.json");
        run(&argv(&[
            "--addr",
            &addr,
            "--out",
            json_out.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&json_out).unwrap();
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains(r#""name":"qrank_serve_requests""#), "{json}");
        assert!(json.contains(r#""name":"qrank_store_pages""#), "{json}");
        assert!(!json.contains("# EOF"), "{json}");

        let prom_out = dir.join("server.prom");
        run(&argv(&[
            "--addr",
            &addr,
            "--format",
            "prom",
            "--out",
            prom_out.to_str().unwrap(),
        ]))
        .unwrap();
        let prom = std::fs::read_to_string(&prom_out).unwrap();
        assert!(prom.starts_with("# TYPE "), "{prom}");
        assert!(prom.trim_end().ends_with("# EOF"), "{prom}");
        server.shutdown();
    }

    #[test]
    fn dumps_a_pipeline_run_from_a_series() {
        let dir = temp_dir();
        let series_path = dir.join("obs.series.bin");
        crate::commands::simulate::run(&argv(&[
            "--out",
            series_path.to_str().unwrap(),
            "--users",
            "120",
            "--sites",
            "3",
            "--birth-rate",
            "5",
            "--burn-in",
            "2",
            "--future",
            "3",
        ]))
        .unwrap();

        let out = dir.join("pipeline.json");
        run(&argv(&[
            "--series",
            series_path.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains(r#""registry""#), "{json}");
        assert!(json.contains(r#""convergence""#), "{json}");
        // the pipeline ranks every aligned snapshot, so at least one
        // solver must have left a convergence trace behind
        assert!(json.contains(r#""solver""#), "{json}");
        assert!(json.contains("span.pipeline.run"), "{json}");
    }

    #[test]
    fn input_validation() {
        assert!(matches!(run(&argv(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&argv(&["--addr", "127.0.0.1:1", "--series", "x"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv(&["--addr", "127.0.0.1:1", "--format", "xml"])),
            Err(CliError::Usage(_))
        ));
        // nothing listens on port 9
        assert!(run(&argv(&["--addr", "127.0.0.1:9"])).is_err());
    }
}
