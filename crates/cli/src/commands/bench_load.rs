//! `qrank bench-load` — drive load against a running `qrank serve`
//! instance (or a self-hosted one) and report throughput and latency
//! percentiles as JSON.

use std::sync::Arc;

use qrank_graph::io::decode_series;
use qrank_serve::{
    run_load, serve, LoadConfig, RefreshConfig, RefreshEngine, ServerConfig, ShardedStore,
};

use crate::args::{parse, write_output, CliError};

const USAGE: &str = "\
qrank bench-load --addr <host:port> [options]
qrank bench-load --series <file> [--shards N] [options]

options:
  --addr HOST:PORT   server to load (required unless --series is given)
  --series FILE      self-hosted mode: seed an in-process server from this
                     snapshot series (from `qrank simulate`) on an
                     ephemeral port, load it, then shut it down
  --shards N         shard count for the self-hosted server (default 1;
                     requires --series)
  --connections N    concurrent connections (default 4)
  --requests N       requests per connection (default 2500)
  --pipeline N       requests in flight per connection (default 8)
  --topk-every N     every Nth request is a topk (default 10; 0 = never)
  --topk-k K         k used for topk requests (default 10)
  --max-page N       sample score pages from 0..N (default 1000)
  --seed S           sampling seed (default 42)
  --timeout-ms MS    per-socket read/write timeout; a wedged server is a
                     typed error, not a hang (default 10000; 0 = block)
  --max-retries N    retry attempts per shed (`overloaded`) response,
                     honoring the server's retry_after_ms hint
                     (default 3; 0 = count sheds without retrying)
  --out FILE         write the JSON report to FILE (default stdout)

the report includes total requests, error count, elapsed seconds,
throughput (req/s), and mean/p50/p99 latency in microseconds.
percentiles are linearly interpolated between the sorted per-request
samples (not snapped to a bucket upper bound or nearest sample), so
small runs report smooth values; with --pipeline > 1, per-request
latency is the batch round-trip averaged over the batch.";

/// Entry point.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let allowed = [
        "addr",
        "series",
        "shards",
        "connections",
        "requests",
        "pipeline",
        "topk-every",
        "topk-k",
        "max-page",
        "seed",
        "timeout-ms",
        "max-retries",
        "out",
    ];
    let p = parse(argv, &allowed, USAGE)?;
    if p.help {
        println!("{USAGE}");
        return Ok(());
    }
    if p.get("shards").is_some() && p.get("series").is_none() {
        return Err(CliError::Usage(format!(
            "--shards requires --series (self-hosted mode)\n\n{USAGE}"
        )));
    }
    if p.get("addr").is_some() && p.get("series").is_some() {
        return Err(CliError::Usage(format!(
            "--addr and --series are mutually exclusive\n\n{USAGE}"
        )));
    }
    let shards: usize = p.get_or("shards", 1, USAGE)?;
    if shards == 0 {
        return Err(CliError::Usage(format!(
            "--shards must be at least 1\n\n{USAGE}"
        )));
    }
    let server = match p.get("series") {
        Some(path) => {
            let bytes = std::fs::read(path)?;
            let series = decode_series(&bytes).map_err(|e| CliError::Runtime(e.to_string()))?;
            let handle = Arc::new(ShardedStore::new(shards));
            // `from_series` publishes generation 1 before it returns; the
            // engine itself is not needed for a read-only load run.
            RefreshEngine::from_series(&series, RefreshConfig::default(), Arc::clone(&handle))
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            let server_cfg = ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                ..Default::default()
            };
            let server =
                serve(handle, &server_cfg).map_err(|e| CliError::Runtime(e.to_string()))?;
            eprintln!(
                "self-hosted server on {} ({} shard(s))",
                server.addr(),
                shards
            );
            Some(server)
        }
        None => None,
    };
    let addr = match &server {
        Some(s) => s.addr().to_string(),
        None => p.require("addr", USAGE)?.to_string(),
    };
    let cfg = LoadConfig {
        addr,
        connections: p.get_or("connections", 4, USAGE)?,
        requests_per_connection: p.get_or("requests", 2_500, USAGE)?,
        pipeline: p.get_or("pipeline", 8, USAGE)?,
        topk_every: p.get_or("topk-every", 10, USAGE)?,
        topk_k: p.get_or("topk-k", 10, USAGE)?,
        max_page: p.get_or("max-page", 1_000, USAGE)?,
        seed: p.get_or("seed", 42, USAGE)?,
        timeout_ms: p.get_or("timeout-ms", 10_000, USAGE)?,
        max_retries: p.get_or("max-retries", 3, USAGE)?,
    };
    let report = run_load(&cfg).map_err(|e| CliError::Runtime(e.to_string()))?;
    eprintln!(
        "{} requests over {} connections in {:.2}s: {:.0} req/s (p50 {:.1}us, p99 {:.1}us)",
        report.requests,
        report.connections,
        report.elapsed_seconds,
        report.throughput_rps,
        report.p50_us,
        report.p99_us
    );
    write_output(p.get("out"), &format!("{}\n", report.to_json()))?;
    if let Some(server) = server {
        server.shutdown();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use qrank_serve::{serve, ServerConfig, ShardedStore};

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn loads_a_live_server_and_writes_a_report() {
        let server = serve(
            Arc::new(ShardedStore::new(1)),
            &ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 1,
                cache_capacity: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let dir = std::env::temp_dir().join("qrank_cli_test_bench_load");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("load.json");
        run(&argv(&[
            "--addr",
            &server.addr().to_string(),
            "--connections",
            "2",
            "--requests",
            "50",
            "--pipeline",
            "4",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains(r#""requests":100"#), "{json}");
        assert!(json.contains("throughput_rps"), "{json}");
        server.shutdown();
    }

    #[test]
    fn self_hosted_sharded_bench_runs_end_to_end() {
        let dir = std::env::temp_dir().join("qrank_cli_test_bench_load_sharded");
        std::fs::create_dir_all(&dir).unwrap();
        let series = dir.join("series.bin");
        crate::commands::simulate::run(&argv(&[
            "--out",
            series.to_str().unwrap(),
            "--users",
            "120",
            "--sites",
            "3",
            "--birth-rate",
            "5",
            "--burn-in",
            "2",
            "--future",
            "3",
        ]))
        .unwrap();
        let out = dir.join("sharded.json");
        run(&argv(&[
            "--series",
            series.to_str().unwrap(),
            "--shards",
            "4",
            "--connections",
            "2",
            "--requests",
            "50",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains(r#""requests":100"#), "{json}");
    }

    #[test]
    fn input_validation() {
        assert!(matches!(run(&argv(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&argv(&["--addr", "127.0.0.1:1", "--connections", "none"])),
            Err(CliError::Usage(_))
        ));
        // --shards only makes sense for a self-hosted server
        assert!(matches!(
            run(&argv(&["--addr", "127.0.0.1:1", "--shards", "2"])),
            Err(CliError::Usage(_))
        ));
        // nothing listens on this port
        assert!(run(&argv(&["--addr", "127.0.0.1:9", "--requests", "1"])).is_err());
    }
}
