//! `qrank generate` — synthetic web graphs.

use qrank_graph::generators::{
    barabasi_albert, copy_model, erdos_renyi_gnm, site_structured, SiteWebParams,
};
use qrank_graph::io::write_edge_list;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::args::{parse, write_output, CliError};

const USAGE: &str = "\
qrank generate --model <ba|er|copy|sites> --out <file|-> [options]

options:
  --model MODEL    generator: ba (Barabasi-Albert), er (Erdos-Renyi G(n,m)),
                   copy (Kleinberg copy model), sites (site-structured web)
  --nodes N        number of nodes (default 10000; ignored for sites)
  --edges M        er only: number of edges (default 5*nodes)
  --m K            ba: out-links per new node (default 3)
  --out-degree K   copy: links per node (default 3)
  --copy-prob P    copy: copy probability (default 0.6)
  --sites S        sites: number of sites (default 154)
  --seed S         RNG seed (default 42)
  --out FILE       output edge list path, `-` for stdout";

/// Entry point.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let allowed = [
        "model",
        "nodes",
        "edges",
        "m",
        "out-degree",
        "copy-prob",
        "sites",
        "seed",
        "out",
    ];
    let p = parse(argv, &allowed, USAGE)?;
    if p.help {
        println!("{USAGE}");
        return Ok(());
    }
    let model = p.require("model", USAGE)?.to_string();
    let nodes: usize = p.get_or("nodes", 10_000, USAGE)?;
    let seed: u64 = p.get_or("seed", 42, USAGE)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let graph = match model.as_str() {
        "ba" => {
            let m: usize = p.get_or("m", 3, USAGE)?;
            barabasi_albert(nodes, m, &mut rng)
        }
        "er" => {
            let edges: usize = p.get_or("edges", nodes.saturating_mul(5), USAGE)?;
            erdos_renyi_gnm(nodes, edges, &mut rng)
        }
        "copy" => {
            let d: usize = p.get_or("out-degree", 3, USAGE)?;
            let cp: f64 = p.get_or("copy-prob", 0.6, USAGE)?;
            copy_model(nodes, d, cp, &mut rng)
        }
        "sites" => {
            let sites: usize = p.get_or("sites", 154, USAGE)?;
            let params = SiteWebParams {
                num_sites: sites,
                ..Default::default()
            };
            site_structured(&params, &mut rng).graph
        }
        other => return Err(CliError::usage(format!("unknown model `{other}`"), USAGE)),
    };

    let mut buf = Vec::new();
    write_edge_list(&graph, &mut buf).map_err(|e| CliError::Runtime(e.to_string()))?;
    write_output(p.get("out"), &String::from_utf8_lossy(&buf))?;
    eprintln!(
        "generated {} nodes, {} edges ({model}, seed {seed})",
        graph.num_nodes(),
        graph.num_edges()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn generates_ba_to_file() {
        let dir = std::env::temp_dir().join("qrank_cli_test_gen");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("ba.edges");
        run(&argv(&[
            "--model",
            "ba",
            "--nodes",
            "100",
            "--m",
            "2",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let g = qrank_graph::io::read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 100);
        assert!(g.num_edges() > 100);
    }

    #[test]
    fn rejects_unknown_model() {
        assert!(matches!(
            run(&argv(&["--model", "banana", "--out", "-"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn requires_model() {
        assert!(matches!(
            run(&argv(&["--out", "-"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn help_short_circuits() {
        run(&argv(&["--help"])).unwrap();
    }
}
