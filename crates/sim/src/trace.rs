//! Popularity-trajectory recording.
//!
//! The paper's future-work "traffic data" application and the
//! cross-validation experiments both need per-page popularity time
//! series sampled from a running [`World`]. [`Tracer`] drives the world
//! through a list of sample times and collects aligned trajectories,
//! ready for `qrank-core` estimators or `qrank-model` fitting.

use crate::World;

/// Aligned per-page popularity time series.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Sample times, ascending.
    pub times: Vec<f64>,
    /// `values[page][k]` = popularity of `page` at `times[k]`. Pages born
    /// after a sample time show popularity 0 there.
    pub values: Vec<Vec<f64>>,
    /// Ground-truth quality per page (for evaluation).
    pub qualities: Vec<f64>,
    /// Creation time per page.
    pub created_at: Vec<f64>,
}

impl Trace {
    /// Number of pages traced.
    pub fn num_pages(&self) -> usize {
        self.values.len()
    }

    /// The `(time, popularity)` series of one page.
    pub fn series(&self, page: usize) -> Vec<(f64, f64)> {
        self.times
            .iter()
            .copied()
            .zip(self.values[page].iter().copied())
            .collect()
    }

    /// Restrict to pages born before the first sample time with a
    /// strictly positive first sample (the cohort estimators can work
    /// with). Returns `(trace, original page indices)`.
    pub fn observable(&self) -> (Trace, Vec<usize>) {
        let keep: Vec<usize> = (0..self.num_pages())
            .filter(|&p| self.created_at[p] <= self.times[0] && self.values[p][0] > 0.0)
            .collect();
        let trace = Trace {
            times: self.times.clone(),
            values: keep.iter().map(|&p| self.values[p].clone()).collect(),
            qualities: keep.iter().map(|&p| self.qualities[p]).collect(),
            created_at: keep.iter().map(|&p| self.created_at[p]).collect(),
        };
        (trace, keep)
    }
}

/// Records popularity trajectories from a running world.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tracer;

impl Tracer {
    /// Advance `world` through `times` (ascending, all at or after the
    /// current clock) and record every page's popularity at each time.
    ///
    /// # Panics
    /// Panics if `times` is empty, unsorted, or starts in the past.
    pub fn record(&self, world: &mut World, times: &[f64]) -> Trace {
        assert!(!times.is_empty(), "need at least one sample time");
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "sample times must be strictly increasing"
        );
        assert!(
            times[0] >= world.time(),
            "first sample {} is before the world clock {}",
            times[0],
            world.time()
        );
        let mut samples: Vec<Vec<f64>> = Vec::with_capacity(times.len());
        for &t in times {
            world.run_until(t);
            samples.push(world.popularities());
        }
        let n = world.num_pages();
        let values: Vec<Vec<f64>> = (0..n)
            .map(|p| {
                samples
                    .iter()
                    .map(|s| s.get(p).copied().unwrap_or(0.0))
                    .collect()
            })
            .collect();
        Trace {
            times: times.to_vec(),
            values,
            qualities: world.qualities(),
            created_at: (0..n as u32).map(|p| world.page(p).created_at).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QualityDist, SimConfig};

    fn world() -> World {
        World::bootstrap(SimConfig {
            num_users: 300,
            num_sites: 5,
            visit_ratio: 1.5,
            page_birth_rate: 10.0,
            quality_dist: QualityDist::Uniform { lo: 0.1, hi: 0.9 },
            dt: 0.1,
            seed: 77,
            ..Default::default()
        })
        .expect("bootstrap")
    }

    #[test]
    fn records_aligned_series() {
        let mut w = world();
        let trace = Tracer.record(&mut w, &[1.0, 2.0, 3.0]);
        assert_eq!(trace.times, vec![1.0, 2.0, 3.0]);
        assert_eq!(trace.num_pages(), w.num_pages());
        assert_eq!(trace.qualities.len(), trace.num_pages());
        for v in &trace.values {
            assert_eq!(v.len(), 3);
        }
        // popularity is monotone without forgetting
        for v in &trace.values {
            assert!(v.windows(2).all(|w| w[1] >= w[0]));
        }
    }

    #[test]
    fn pages_born_mid_trace_are_zero_before_birth() {
        let mut w = world();
        let trace = Tracer.record(&mut w, &[0.5, 4.0]);
        let late_born: Vec<usize> = (0..trace.num_pages())
            .filter(|&p| trace.created_at[p] > 0.5)
            .collect();
        assert!(
            !late_born.is_empty(),
            "pages should be born during the trace"
        );
        for p in late_born {
            assert_eq!(
                trace.values[p][0], 0.0,
                "page {p} born at {}",
                trace.created_at[p]
            );
        }
    }

    #[test]
    fn observable_filters_unborn_and_unliked() {
        let mut w = world();
        let trace = Tracer.record(&mut w, &[1.0, 3.0]);
        let (obs, keep) = trace.observable();
        assert_eq!(obs.num_pages(), keep.len());
        assert!(obs.num_pages() > 0);
        for p in 0..obs.num_pages() {
            assert!(obs.values[p][0] > 0.0);
            assert!(obs.created_at[p] <= 1.0);
        }
        // series accessor agrees
        let s = obs.series(0);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].0, 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_times() {
        let mut w = world();
        let _ = Tracer.record(&mut w, &[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "before the world clock")]
    fn rejects_past_times() {
        let mut w = world();
        w.run_until(5.0);
        let _ = Tracer.record(&mut w, &[1.0]);
    }
}
