//! # qrank-sim — agent-based web-evolution simulator
//!
//! The paper's experiment (Section 8) needs something we cannot download
//! in 2026: four crawls of 154 live web sites taken in 2002–2003. This
//! crate substitutes a *generative* web: a population of `n` users who
//! visit pages, become aware of them, like them with probability equal to
//! the page's intrinsic quality, and create links when they do — i.e. a
//! direct mechanization of the paper's own user-visitation model
//! (Propositions 1 and 2 plus Definition 1), with the future-work
//! extensions (forgetting, noise) available as knobs.
//!
//! Because the simulator *is* the paper's model, experiments on it test
//! exactly what the paper's theory predicts, while the snapshot crawler
//! ([`crawler`]) reproduces the paper's measurement protocol (per-site
//! BFS mirrors, page caps, common-page intersection) so the estimator is
//! evaluated the same way the paper evaluates it — against held-out
//! future PageRank, never against the hidden ground-truth quality
//! (which, unlike the paper, we *do* know and can report separately).
//!
//! ## Structure
//!
//! * [`config`] — simulation parameters.
//! * [`dist`] — quality distributions and discrete samplers.
//! * [`world`] — the simulation state machine.
//! * [`crawler`] — site-rooted snapshot crawler and the paper's timeline.
//! * [`indexed_set`] — O(1) insert/remove/sample set used for awareness.
//! * [`rng`] — counter-based streams behind the parallel, thread-count-
//!   independent visit phase (see [`world`]'s module docs).
//!
//! ```
//! use qrank_sim::config::SimConfig;
//! use qrank_sim::world::World;
//!
//! let cfg = SimConfig { num_users: 500, num_sites: 4, seed: 7, ..Default::default() };
//! let mut world = World::bootstrap(cfg).unwrap();
//! world.run_until(2.0);
//! assert!(world.num_pages() >= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod config;
pub mod crawler;
pub mod dist;
pub mod indexed_set;
pub mod montecarlo;
pub mod rng;
pub mod trace;
pub mod world;

pub use config::{SimConfig, VisitModel};
pub use crawler::{Crawler, SnapshotSchedule};
pub use dist::QualityDist;
pub use trace::{Trace, Tracer};
pub use world::World;
