//! A fixed-capacity bitset over user ids.
//!
//! A saturated page is known to *every* user, so per-page awareness and
//! like sets grow to the full population. Hash sets at that density cost
//! ~50 bytes per member; a bitset costs one bit. With thousands of pages
//! times thousands of users this is the difference between megabytes and
//! gigabytes.

/// Fixed-capacity bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// A bitset able to hold ids `0..capacity`, all clear.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Test bit `i`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        let i = i as usize;
        debug_assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i`; returns true if it was previously clear.
    #[inline]
    pub fn set(&mut self, i: u32) -> bool {
        let i = i as usize;
        debug_assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let mask = 1u64 << (i % 64);
        let word = &mut self.words[i / 64];
        let was_clear = *word & mask == 0;
        *word |= mask;
        was_clear
    }

    /// Clear bit `i`; returns true if it was previously set.
    #[inline]
    pub fn clear(&mut self, i: u32) -> bool {
        let i = i as usize;
        debug_assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let mask = 1u64 << (i % 64);
        let word = &mut self.words[i / 64];
        let was_set = *word & mask != 0;
        *word &= !mask;
        was_set
    }

    /// Number of set bits (O(words)).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Population count of the union of several bitsets of equal
    /// capacity (allocates one scratch word vector).
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_count<'a, I: IntoIterator<Item = &'a BitSet>>(sets: I) -> usize {
        let mut acc: Option<Vec<u64>> = None;
        let mut capacity = 0;
        for s in sets {
            match &mut acc {
                None => {
                    acc = Some(s.words.clone());
                    capacity = s.capacity;
                }
                Some(words) => {
                    assert_eq!(s.capacity, capacity, "bitset capacities differ");
                    for (w, &x) in words.iter_mut().zip(&s.words) {
                        *w |= x;
                    }
                }
            }
        }
        acc.map(|w| w.iter().map(|x| x.count_ones() as usize).sum())
            .unwrap_or(0)
    }
}

/// A set of user ids with O(1) insert, membership, uniform index
/// sampling, and removal *by sampled index* — exactly the operations the
/// simulation needs, with bitset-backed membership and a dense member
/// vector for sampling.
#[derive(Debug, Clone)]
pub struct SampleSet {
    members: Vec<u32>,
    bits: BitSet,
}

impl SampleSet {
    /// Empty set over ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        SampleSet {
            members: Vec::new(),
            bits: BitSet::new(capacity),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.bits.get(id)
    }

    /// Insert; returns true if newly added.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        if self.bits.set(id) {
            self.members.push(id);
            true
        } else {
            false
        }
    }

    /// The member at dense index `i` (for uniform sampling: draw
    /// `i ~ U(0..len)` and look it up).
    #[inline]
    pub fn member_at(&self, i: usize) -> u32 {
        self.members[i]
    }

    /// Remove the member at dense index `i` (swap-remove) and return it.
    pub fn remove_at(&mut self, i: usize) -> u32 {
        let id = self.members.swap_remove(i);
        self.bits.clear(id);
        id
    }

    /// Iterate members in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.members.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_set_get_clear() {
        let mut b = BitSet::new(130);
        assert!(!b.get(0));
        assert!(b.set(0));
        assert!(!b.set(0));
        assert!(b.get(0));
        assert!(b.set(129));
        assert_eq!(b.count(), 2);
        assert!(b.clear(0));
        assert!(!b.clear(0));
        assert_eq!(b.count(), 1);
        assert_eq!(b.capacity(), 130);
    }

    #[test]
    fn bitset_word_boundaries() {
        let mut b = BitSet::new(128);
        for i in [63u32, 64, 127] {
            assert!(b.set(i));
            assert!(b.get(i));
        }
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn union_count_works() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.set(1);
        a.set(2);
        b.set(2);
        b.set(99);
        assert_eq!(BitSet::union_count([&a, &b]), 3);
        assert_eq!(BitSet::union_count([&a]), 2);
        assert_eq!(BitSet::union_count(std::iter::empty::<&BitSet>()), 0);
    }

    #[test]
    #[should_panic(expected = "capacities")]
    fn union_count_rejects_mismatched_capacity() {
        let a = BitSet::new(10);
        let b = BitSet::new(20);
        let _ = BitSet::union_count([&a, &b]);
    }

    #[test]
    fn sample_set_basics() {
        let mut s = SampleSet::new(100);
        assert!(s.is_empty());
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.insert(42));
        assert_eq!(s.len(), 2);
        assert!(s.contains(7) && s.contains(42) && !s.contains(9));
        let first = s.member_at(0);
        let removed = s.remove_at(0);
        assert_eq!(first, removed);
        assert!(!s.contains(removed));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sample_set_swap_remove_consistency() {
        let mut s = SampleSet::new(1000);
        for i in 0..500 {
            s.insert(i);
        }
        // remove half by index 0 repeatedly
        for _ in 0..250 {
            let id = s.remove_at(0);
            assert!(!s.contains(id));
        }
        assert_eq!(s.len(), 250);
        let members: Vec<u32> = s.iter().collect();
        assert_eq!(members.len(), 250);
        for m in members {
            assert!(s.contains(m));
        }
    }
}
