//! Counter-based RNG streams for thread-count-independent simulation.
//!
//! The visit phase of [`crate::World::step`] used to pull every random
//! draw from one sequential generator, which welds the whole phase into
//! a single serial chain: processing pages in any other order (or on
//! several threads) would consume the stream differently and change the
//! history. A counter-based generator breaks the chain. Each `(seed,
//! step, page)` triple names an *independent* stream whose draws are a
//! pure function of the key and a position counter — so page 7 of step
//! 12 sees the same randomness whether it is processed first, last, or
//! on another thread, and the simulated history is bit-identical for
//! every thread count.
//!
//! The construction is SplitMix64 over `key + counter·γ` (γ the golden
//! -ratio increment): exactly the SplitMix64 sequence started at an
//! arbitrary point, a generator with solid statistical quality for its
//! cost. Keys are derived by chaining the same finalizer over the seed,
//! step, and page so that nearby triples land in unrelated streams.

use rand::RngCore;

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a strong 64-bit mix.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One independent random stream, addressed by key — see the module
/// docs. Implements [`rand::RngCore`], so every sampler in the
/// workspace (Poisson, binomial, quality distributions) works on it
/// unchanged.
#[derive(Debug, Clone)]
pub struct StreamRng {
    key: u64,
    counter: u64,
}

impl StreamRng {
    /// The stream for `(seed, step, page)`.
    pub fn for_page(seed: u64, step: u64, page: u64) -> StreamRng {
        let key = mix(mix(mix(seed ^ GOLDEN).wrapping_add(step)).wrapping_add(page));
        StreamRng { key, counter: 0 }
    }
}

impl RngCore for StreamRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        mix(self.key.wrapping_add(self.counter.wrapping_mul(GOLDEN)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_and_independent_of_draw_order() {
        let a: Vec<u64> = {
            let mut r = StreamRng::for_page(1, 2, 3);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StreamRng::for_page(1, 2, 3);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_keys_give_different_streams() {
        let base = StreamRng::for_page(1, 2, 3).next_u64();
        assert_ne!(base, StreamRng::for_page(2, 2, 3).next_u64());
        assert_ne!(base, StreamRng::for_page(1, 3, 3).next_u64());
        assert_ne!(base, StreamRng::for_page(1, 2, 4).next_u64());
    }

    #[test]
    fn uniform_f64_has_sane_moments() {
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let n = 50_000;
        // across many streams, one draw each — the access pattern the
        // simulation actually uses
        for page in 0..n as u64 {
            let mut r = StreamRng::for_page(7, 11, page);
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn low_bits_are_unbiased() {
        let mut ones = 0u32;
        for page in 0..10_000u64 {
            let mut r = StreamRng::for_page(3, 5, page);
            ones += (r.next_u64() & 1) as u32;
        }
        assert!((4_700..5_300).contains(&ones), "ones {ones}");
    }
}
