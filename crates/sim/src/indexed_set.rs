//! A set with O(1) insert, remove, membership, and uniform sampling.
//!
//! The forgetting extension needs to pick a *uniformly random aware user*
//! of a page and remove them; a plain `HashSet` cannot sample without
//! iteration. `IndexedSet` keeps elements in a dense `Vec` (swap-remove
//! on deletion) plus a position map.

use std::collections::HashMap;

use rand::Rng;

/// A u32 set supporting O(1) uniform random sampling.
#[derive(Debug, Clone, Default)]
pub struct IndexedSet {
    items: Vec<u32>,
    pos: HashMap<u32, u32>,
}

impl IndexedSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, x: u32) -> bool {
        self.pos.contains_key(&x)
    }

    /// Insert `x`; returns true if it was not already present.
    pub fn insert(&mut self, x: u32) -> bool {
        if self.pos.contains_key(&x) {
            return false;
        }
        self.pos.insert(x, self.items.len() as u32);
        self.items.push(x);
        true
    }

    /// Remove `x`; returns true if it was present.
    pub fn remove(&mut self, x: u32) -> bool {
        let Some(i) = self.pos.remove(&x) else {
            return false;
        };
        let i = i as usize;
        let last = self.items.len() - 1;
        self.items.swap(i, last);
        self.items.pop();
        if i < self.items.len() {
            self.pos.insert(self.items[i], i as u32);
        }
        true
    }

    /// A uniformly random element, or `None` if empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u32> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.items[rng.random_range(0..self.items.len())])
        }
    }

    /// Iterate over elements (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.items.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn insert_remove_contains() {
        let mut s = IndexedSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert_eq!(s.len(), 1);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn swap_remove_keeps_positions_consistent() {
        let mut s = IndexedSet::new();
        for x in 0..100 {
            s.insert(x);
        }
        // remove from the middle repeatedly
        for x in (0..100).step_by(3) {
            assert!(s.remove(x));
        }
        for x in 0..100u32 {
            assert_eq!(s.contains(x), x % 3 != 0, "x={x}");
        }
        // everything remaining is still removable
        let remaining: Vec<u32> = s.iter().collect();
        for x in remaining {
            assert!(s.remove(x));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn sample_is_uniformish() {
        let mut s = IndexedSet::new();
        for x in 0..10 {
            s.insert(x);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[s.sample(&mut rng).unwrap() as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5000.0).abs() < 500.0, "count {c}");
        }
    }

    #[test]
    fn sample_empty_is_none() {
        let s = IndexedSet::new();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(s.sample(&mut rng).is_none());
    }
}
