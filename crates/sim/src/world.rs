//! The simulation state machine.
//!
//! A [`World`] holds a population of users, a growing set of pages with
//! intrinsic qualities, and the evolving link graph. Each
//! [`World::step`] advances time by `dt`:
//!
//! 1. **Page births** — `Poisson(birth_rate·dt)` new pages appear, each
//!    on a random site with quality drawn from the configured
//!    distribution. Navigation links (parent → page, page → site root)
//!    keep every page crawlable from its site root, as the paper's
//!    mirroring crawler requires.
//! 2. **Visits** — page `p` receives `Poisson(V(p,t)·dt)` visits, with
//!    `V = r·P` (Proposition 1) or `V ∝ PageRank` (the rich-get-richer
//!    variant). Each visit is by a uniformly random user
//!    (Proposition 2). A user discovering `p` for the first time becomes
//!    aware and, with probability `Q(p)` (Definition 1), likes it and
//!    links to it from their home page.
//! 3. **Forgetting** (optional) — each aware user forgets with
//!    probability `forget_rate·dt`, dropping their like and their link —
//!    the paper's future-work explanation for declining PageRanks.
//!
//! ## Determinism and parallelism
//!
//! Births and forgetting draw from one seeded sequential RNG. The visit
//! phase — the per-step hot loop, O(pages) — instead draws every page's
//! Poisson visit count and per-visit outcomes from an independent
//! counter-based stream keyed on `(seed, step, page)`
//! ([`crate::rng::StreamRng`]), so its outcome is a pure function of the
//! config: identical configs give **bit-identical histories for any
//! thread count**. [`World::set_thread_budget`] picks how many worker
//! threads process page chunks; like-link mutations are collected
//! per-thread and applied in page order afterwards, keeping the graph
//! event log identical too.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use qrank_graph::{CsrGraph, DynamicGraph, GraphError, NodeId};
use qrank_model::noise::binomial;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bitset::{BitSet, SampleSet};
use crate::dist::sample_poisson;
use crate::rng::StreamRng;
use crate::{SimConfig, VisitModel};

/// Immutable facts about a page.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageInfo {
    /// Intrinsic quality `Q(p)` — hidden from estimators, used only for
    /// ground-truth evaluation.
    pub quality: f64,
    /// Simulation time of creation.
    pub created_at: f64,
    /// Site index the page belongs to.
    pub site: u32,
    /// User who authored the page.
    pub owner: u32,
}

/// The simulated web.
#[derive(Debug)]
pub struct World {
    config: SimConfig,
    rng: StdRng,
    time: f64,
    pages: Vec<PageInfo>,
    /// Users aware of each page.
    aware: Vec<SampleSet>,
    /// Like membership per page (`popularity = liked_count/n`).
    liked: Vec<BitSet>,
    /// Number of likes per page.
    liked_count: Vec<u32>,
    /// Home page of each user (a node id in the link graph).
    homepage: Vec<u32>,
    /// Root page of each site.
    site_roots: Vec<u32>,
    /// Pages of each site (for parent sampling).
    site_pages: Vec<Vec<u32>>,
    /// The evolving link graph; node ids == page indices.
    links: DynamicGraph,
    /// Navigation edges that must survive forgetting.
    structural: HashSet<(u32, u32)>,
    /// `(page, user) -> src` of the like-link the user created.
    like_link_src: HashMap<(u32, u32), u32>,
    /// Cached PageRank for the ByPageRank visit model.
    cached_pr: Vec<f64>,
    cached_pr_pages: usize,
    /// Steps taken so far — the `step` component of visit-stream keys.
    steps_taken: u64,
    /// Worker threads for the visit phase (execution knob only; the
    /// history is bit-identical for every value).
    threads: usize,
    /// Bumped on every state mutation (page birth, link add/remove,
    /// like/unlike); keys the derived-view caches below.
    version: u64,
    /// Memoized [`World::link_graph_at`] materialization.
    cached_graph: Mutex<Option<GraphCache>>,
    /// Memoized [`World::popularities`] vector.
    cached_pops: Mutex<Option<(u64, Vec<f64>)>>,
}

/// A materialized link graph, valid while `version` is current.
#[derive(Debug)]
struct GraphCache {
    version: u64,
    time: f64,
    graph: Arc<CsrGraph>,
}

impl World {
    /// Create a world at `t = 0`: one root page per site, one home page
    /// per user (spread round-robin across sites), and a couple of
    /// cross-site directory links between roots.
    pub fn bootstrap(config: SimConfig) -> Result<World, GraphError> {
        config.validate();
        let mut world = World {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            time: 0.0,
            pages: Vec::new(),
            aware: Vec::new(),
            liked: Vec::new(),
            liked_count: Vec::new(),
            homepage: Vec::new(),
            site_roots: Vec::new(),
            site_pages: vec![Vec::new(); config.num_sites],
            links: DynamicGraph::new(),
            structural: HashSet::new(),
            like_link_src: HashMap::new(),
            cached_pr: Vec::new(),
            cached_pr_pages: 0,
            steps_taken: 0,
            threads: 1,
            version: 0,
            cached_graph: Mutex::new(None),
            cached_pops: Mutex::new(None),
        };

        // Site roots; each is authored by some user so it starts with
        // one like (P(p,0) = 1/n — the model's minimum viable spark).
        for site in 0..config.num_sites {
            let quality = world.config.quality_dist.sample(&mut world.rng);
            let owner = (site % config.num_users) as u32;
            let id = world.new_page_raw(quality, site as u32, owner)?;
            world.site_roots.push(id);
        }
        // Cross-site directory links between roots.
        for site in 0..config.num_sites {
            for _ in 0..2usize.min(config.num_sites - 1) {
                let other = world.rng.random_range(0..config.num_sites);
                if other != site {
                    world.add_structural_edge(world.site_roots[site], world.site_roots[other])?;
                }
            }
        }
        // User home pages, round-robin across sites, linked from the root.
        for user in 0..config.num_users {
            let site = (user % config.num_sites) as u32;
            let quality = world.config.quality_dist.sample(&mut world.rng);
            let id = world.new_page_raw(quality, site, user as u32)?;
            world.homepage.push(id);
            world.add_structural_edge(world.site_roots[site as usize], id)?;
            world.add_structural_edge(id, world.site_roots[site as usize])?;
            // owners like their own page
            world.aware[id as usize].insert(user as u32);
            world.record_like(id, user as u32)?;
        }
        // Root owners like their roots (deferred until home pages exist,
        // since like-links originate from the liker's home page).
        for site in 0..config.num_sites {
            let root = world.site_roots[site];
            let owner = world.pages[root as usize].owner;
            world.aware[root as usize].insert(owner);
            world.record_like(root, owner)?;
        }
        Ok(world)
    }

    fn new_page_raw(&mut self, quality: f64, site: u32, owner: u32) -> Result<u32, GraphError> {
        self.version += 1;
        let id = self.links.add_node(self.time)?;
        self.pages.push(PageInfo {
            quality,
            created_at: self.time,
            site,
            owner,
        });
        self.aware.push(SampleSet::new(self.config.num_users));
        self.liked.push(BitSet::new(self.config.num_users));
        self.liked_count.push(0);
        self.site_pages[site as usize].push(id);
        Ok(id)
    }

    fn add_structural_edge(&mut self, src: u32, dst: u32) -> Result<(), GraphError> {
        if src != dst {
            self.version += 1;
            self.links.add_edge(src, dst, self.time)?;
            self.structural.insert((src, dst));
        }
        Ok(())
    }

    /// A user starts liking a page: update popularity and create the
    /// like-link from their home page.
    fn record_like(&mut self, page: u32, user: u32) -> Result<(), GraphError> {
        if !self.liked[page as usize].set(user) {
            return Ok(());
        }
        self.version += 1;
        self.liked_count[page as usize] += 1;
        let src = self.homepage.get(user as usize).copied().unwrap_or(page);
        if src != page {
            self.links.add_edge(src, page, self.time)?;
            self.like_link_src.insert((page, user), src);
        }
        Ok(())
    }

    /// Advance the simulation by one `dt` step.
    pub fn step(&mut self) -> Result<(), GraphError> {
        let _span = qrank_obs::span!("sim.step");
        let cfg = self.config;
        self.time += cfg.dt;
        // Telemetry below only *counts* what the step did — it never
        // draws randomness or branches the simulation, so enabling
        // observability cannot perturb the history (see the obs-on/off
        // fingerprint test in tests/determinism.rs).
        let links_before = self.like_link_src.len() + self.structural.len();

        // 1. Page births.
        let births = sample_poisson(&mut self.rng, cfg.page_birth_rate * cfg.dt);
        for _ in 0..births {
            let site = self.rng.random_range(0..cfg.num_sites) as u32;
            let owner = self.rng.random_range(0..cfg.num_users) as u32;
            let quality = cfg.quality_dist.sample(&mut self.rng);
            let id = self.new_page_raw(quality, site, owner)?;
            // navigation: random same-site parent links to the new page,
            // which links back to its site root.
            let parent = {
                let sp = &self.site_pages[site as usize];
                sp[self.rng.random_range(0..sp.len() - 1)] // exclude the new page itself
            };
            self.add_structural_edge(parent, id)?;
            self.add_structural_edge(id, self.site_roots[site as usize])?;
            // the author knows and likes their own page: P(p,0) = 1/n
            self.aware[id as usize].insert(owner);
            self.record_like(id, owner)?;
        }

        // 2. Visits. Every page draws from its own (seed, step, page)
        // stream, so the phase parallelizes over page chunks with a
        // bit-identical outcome for any thread count; like events come
        // back in page order and are applied here, on one thread, so the
        // graph event log is order-independent too.
        let visit_weights = self.visit_weights();
        self.steps_taken += 1;
        let (like_events, visits) = self.visit_phase(&visit_weights);
        let likes = like_events.len() as u64;
        for (p, user) in like_events {
            self.record_like(p, user)?;
        }
        let links_created =
            (self.like_link_src.len() + self.structural.len()).saturating_sub(links_before) as u64;

        // 3. Forgetting.
        let mut forgets = 0u64;
        if cfg.forget_rate > 0.0 {
            let p_forget = (cfg.forget_rate * cfg.dt).min(1.0);
            let num_pages = self.pages.len();
            for p in 0..num_pages {
                let k = binomial(&mut self.rng, self.aware[p].len() as u64, p_forget);
                for _ in 0..k {
                    if self.aware[p].is_empty() {
                        break;
                    }
                    let idx = self.rng.random_range(0..self.aware[p].len());
                    let user = self.aware[p].member_at(idx);
                    // authors never forget their own page (they plainly
                    // know their own work, and it keeps the navigation
                    // structure rooted)
                    if self.pages[p].owner == user {
                        continue;
                    }
                    self.aware[p].remove_at(idx);
                    self.forget_like(p as u32, user)?;
                    forgets += 1;
                }
            }
        }

        if qrank_obs::enabled() {
            let registry = qrank_obs::global();
            registry.counter("sim.steps").inc();
            registry.counter("sim.pages_born").add(births);
            registry.counter("sim.visits").add(visits);
            registry.counter("sim.likes").add(likes);
            registry.counter("sim.links_created").add(links_created);
            registry.counter("sim.forgets").add(forgets);
            qrank_obs::recorder::record(
                "sim.step",
                0,
                0,
                &format!(
                    "step={} t={:.4} births={births} visits={visits} likes={likes} \
                     links={links_created} forgets={forgets}",
                    self.steps_taken, self.time
                ),
            );
        }
        Ok(())
    }

    /// The visit phase of one step: mutates awareness in place and
    /// returns the like events `(page, user)` in page order (discovery
    /// order within a page) plus the total visits drawn (telemetry
    /// only). Pages are processed in disjoint contiguous chunks on up
    /// to [`World::thread_budget`] worker threads; each page's
    /// randomness comes from its own counter-based stream, so the
    /// result is bit-identical for any thread count.
    fn visit_phase(&mut self, visit_weights: &[f64]) -> (Vec<(u32, u32)>, u64) {
        let n = self.config.num_users;
        let dt = self.config.dt;
        let seed = self.config.seed;
        let step = self.steps_taken;
        let num_pages = self.pages.len();
        let threads = self.threads.clamp(1, num_pages.max(1));
        let pages = &self.pages;
        let aware = &mut self.aware[..];
        if threads == 1 {
            let mut likes = Vec::new();
            let mut visits = 0u64;
            for (p, aw) in aware.iter_mut().enumerate() {
                visits += visit_page(
                    n,
                    dt,
                    seed,
                    step,
                    p as u32,
                    visit_weights[p],
                    pages[p].quality,
                    aw,
                    &mut likes,
                );
            }
            return (likes, visits);
        }
        let chunk = num_pages.div_ceil(threads);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            let mut rest = aware;
            let mut base = 0usize;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let lo = base;
                base += take;
                handles.push(s.spawn(move || {
                    let mut likes = Vec::new();
                    let mut visits = 0u64;
                    for (i, aw) in head.iter_mut().enumerate() {
                        let p = lo + i;
                        visits += visit_page(
                            n,
                            dt,
                            seed,
                            step,
                            p as u32,
                            visit_weights[p],
                            pages[p].quality,
                            aw,
                            &mut likes,
                        );
                    }
                    (likes, visits)
                }));
            }
            // joining in spawn order keeps the events in page order
            let mut all_likes = Vec::new();
            let mut visits = 0u64;
            for h in handles {
                let (likes, v) = h.join().expect("visit worker panicked");
                all_likes.extend(likes);
                visits += v;
            }
            (all_likes, visits)
        })
    }

    /// Drop `user`'s like of `page` (if any) and the associated
    /// like-link, preserving structural navigation edges.
    fn forget_like(&mut self, page: u32, user: u32) -> Result<(), GraphError> {
        if self.liked[page as usize].clear(user) {
            self.version += 1;
            self.liked_count[page as usize] -= 1;
            if let Some(src) = self.like_link_src.remove(&(page, user)) {
                if !self.structural.contains(&(src, page)) {
                    self.links.remove_edge(src, page, self.time)?;
                }
            }
        }
        Ok(())
    }

    /// Visit rate per page (visits per unit time, before `dt` scaling).
    fn visit_weights(&mut self) -> Vec<f64> {
        let n = self.config.num_users as f64;
        let r = self.config.visit_ratio * n; // the model's r
        match self.config.visit_model {
            VisitModel::ByPopularity => {
                self.liked_count.iter().map(|&l| r * l as f64 / n).collect()
            }
            VisitModel::ByPageRank => {
                // Total visit volume matches the ByPopularity world at the
                // same aggregate popularity; allocation follows PageRank.
                let total: f64 = self.liked_count.iter().map(|&l| r * l as f64 / n).sum();
                self.refresh_pagerank();
                self.cached_pr.iter().map(|&pr| total * pr).collect()
            }
            VisitModel::BySearchRank { bias } => {
                // Rank pages by PageRank; exposure decays with position.
                let total: f64 = self.liked_count.iter().map(|&l| r * l as f64 / n).sum();
                self.refresh_pagerank();
                let mut order: Vec<usize> = (0..self.pages.len()).collect();
                order.sort_by(|&a, &b| {
                    self.cached_pr[b]
                        .partial_cmp(&self.cached_pr[a])
                        .expect("PageRank is never NaN")
                        .then(a.cmp(&b))
                });
                let mut weight = vec![0.0; self.pages.len()];
                let mut mass = 0.0;
                for (pos, &p) in order.iter().enumerate() {
                    let w = 1.0 / ((pos + 1) as f64).powf(bias);
                    weight[p] = w;
                    mass += w;
                }
                if mass > 0.0 {
                    for w in weight.iter_mut() {
                        *w *= total / mass;
                    }
                }
                weight
            }
        }
    }

    fn refresh_pagerank(&mut self) {
        // recompute when the page set grew by >2% or never computed
        if self.cached_pr_pages > 0
            && self.pages.len() * 100 <= self.cached_pr_pages * 102
            && self.cached_pr.len() == self.pages.len()
        {
            return;
        }
        let g = self.link_graph_arc(self.time);
        let cfg = qrank_rank::PageRankConfig {
            tolerance: 1e-9,
            max_iterations: 100,
            ..Default::default()
        };
        let mut pr = qrank_rank::pagerank(g.as_ref(), &cfg).scores;
        pr.resize(self.pages.len(), 0.0);
        self.cached_pr = pr;
        self.cached_pr_pages = self.pages.len();
    }

    /// Advance until the clock reaches at least `t`.
    pub fn run_until(&mut self, t: f64) {
        while self.time < t {
            self.step()
                .expect("simulation step cannot fail after bootstrap");
        }
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The configuration the world was built with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Number of pages ever created.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Page metadata.
    pub fn page(&self, p: u32) -> &PageInfo {
        &self.pages[p as usize]
    }

    /// Ground-truth qualities of all pages (for evaluation only).
    pub fn qualities(&self) -> Vec<f64> {
        self.pages.iter().map(|p| p.quality).collect()
    }

    /// Current (simple) popularity `P(p,t) = likes/n`.
    pub fn popularity(&self, p: u32) -> f64 {
        self.liked_count[p as usize] as f64 / self.config.num_users as f64
    }

    /// Current popularity of every page — the "traffic data" view of the
    /// corpus (the paper's final future-work item applies the estimator
    /// to site-traffic measurements, which are popularity fractions
    /// rather than PageRank scores).
    pub fn popularities(&self) -> Vec<f64> {
        let mut guard = self.cached_pops.lock().expect("popularity cache poisoned");
        if let Some((version, pops)) = guard.as_ref() {
            if *version == self.version {
                if qrank_obs::enabled() {
                    qrank_obs::global().counter("sim.pops_cache.hit").inc();
                }
                return pops.clone();
            }
        }
        if qrank_obs::enabled() {
            qrank_obs::global().counter("sim.pops_cache.miss").inc();
        }
        let pops: Vec<f64> = (0..self.pages.len() as u32)
            .map(|p| self.popularity(p))
            .collect();
        *guard = Some((self.version, pops.clone()));
        pops
    }

    /// Current user awareness `A(p,t)`.
    pub fn awareness(&self, p: u32) -> f64 {
        self.aware[p as usize].len() as f64 / self.config.num_users as f64
    }

    /// Root page of each site (crawl entry points).
    pub fn site_roots(&self) -> &[u32] {
        &self.site_roots
    }

    /// Site-level popularity: the fraction of users who like *at least
    /// one* page of the site — the quantity NetRatings-style traffic
    /// panels measure, and the unit the paper's traffic future-work
    /// estimates quality for.
    pub fn site_popularity(&self, site: u32) -> f64 {
        let sets = self.site_pages[site as usize]
            .iter()
            .map(|&p| &self.liked[p as usize]);
        crate::bitset::BitSet::union_count(sets) as f64 / self.config.num_users as f64
    }

    /// The link graph as of time `t <= now`, over all page ids (pages not
    /// yet born appear isolated). Node ids equal page indices.
    pub fn link_graph_at(&self, t: f64) -> CsrGraph {
        (*self.link_graph_arc(t)).clone()
    }

    /// Shared handle to the materialized link graph as of `t` — memoized
    /// on `(world state, t)`, so the per-step hot paths (PageRank
    /// refresh, crawler, metrics) that all ask for the current graph
    /// rebuild it at most once per mutation instead of replaying the
    /// whole event log on every call.
    pub fn link_graph_arc(&self, t: f64) -> Arc<CsrGraph> {
        let mut guard = self.cached_graph.lock().expect("graph cache poisoned");
        if let Some(c) = guard.as_ref() {
            if c.version == self.version && c.time.to_bits() == t.to_bits() {
                if qrank_obs::enabled() {
                    qrank_obs::global().counter("sim.graph_cache.hit").inc();
                }
                return Arc::clone(&c.graph);
            }
        }
        if qrank_obs::enabled() {
            qrank_obs::global().counter("sim.graph_cache.miss").inc();
        }
        let g = Arc::new(self.links.graph_at_full(t));
        *guard = Some(GraphCache {
            version: self.version,
            time: t,
            graph: Arc::clone(&g),
        });
        g
    }

    /// Set the number of worker threads the visit phase may use. Purely
    /// an execution knob: the history is bit-identical for every value
    /// (see the module docs). Clamped to at least 1.
    pub fn set_thread_budget(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Worker threads the visit phase will use.
    pub fn thread_budget(&self) -> usize {
        self.threads
    }

    /// The link graph restricted to pages alive at `t`, plus the mapping
    /// `node -> page id`.
    pub fn alive_graph_at(&self, t: f64) -> (CsrGraph, Vec<NodeId>) {
        self.links.snapshot_at(t)
    }
}

/// Visits to one page within one step, drawn from the page's own
/// `(seed, step, page)` stream. Each visit is by a uniformly random user
/// (Proposition 2); only visits by currently-unaware users change any
/// state, so the Poisson visit stream is thinned to its discovery
/// events: discoveries ~ Binomial(visits, unaware/n), each by a
/// uniformly random unaware user. (Within one step the thinning
/// probability is held at its start-of-step value — an O(dt²)
/// approximation, like the step discretization itself.) Awareness is
/// updated in place; like events append to `likes` in discovery order.
/// Returns the number of visits drawn (telemetry only — pages whose
/// stream is never sampled report 0).
#[allow(clippy::too_many_arguments)]
fn visit_page(
    num_users: usize,
    dt: f64,
    seed: u64,
    step: u64,
    page: u32,
    weight: f64,
    quality: f64,
    aware: &mut SampleSet,
    likes: &mut Vec<(u32, u32)>,
) -> u64 {
    let lambda = weight * dt;
    if lambda <= 0.0 {
        return 0;
    }
    let unaware = num_users - aware.len();
    if unaware == 0 {
        return 0; // saturated: visits cannot change anything
    }
    let mut rng = StreamRng::for_page(seed, step, u64::from(page));
    let visits = sample_poisson(&mut rng, lambda);
    if visits == 0 {
        return 0;
    }
    let discoveries =
        binomial(&mut rng, visits, unaware as f64 / num_users as f64).min(unaware as u64);
    for _ in 0..discoveries {
        // rejection-sample an unaware user; expected trials n/unaware,
        // total work bounded by n bit tests
        let user = loop {
            let u = rng.random_range(0..num_users) as u32;
            if !aware.contains(u) {
                break u;
            }
        };
        aware.insert(user);
        // first discovery: like with probability Q(p)
        if rng.random::<f64>() < quality {
            likes.push((page, user));
        }
    }
    visits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SimConfig {
        SimConfig {
            num_users: 300,
            num_sites: 5,
            visit_ratio: 3.0,
            page_birth_rate: 10.0,
            dt: 0.05,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn bootstrap_shape() {
        let w = World::bootstrap(small_config()).unwrap();
        assert_eq!(w.num_pages(), 5 + 300); // roots + homepages
        assert_eq!(w.site_roots().len(), 5);
        assert_eq!(w.time(), 0.0);
        // every homepage owner likes their page
        for user in 0..300u32 {
            let hp = w.homepage[user as usize];
            assert!(w.popularity(hp) > 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = World::bootstrap(small_config()).unwrap();
        let mut b = World::bootstrap(small_config()).unwrap();
        a.run_until(1.0);
        b.run_until(1.0);
        assert_eq!(a.num_pages(), b.num_pages());
        for p in 0..a.num_pages() as u32 {
            assert_eq!(a.popularity(p), b.popularity(p));
            assert_eq!(a.page(p).quality, b.page(p).quality);
        }
        assert_eq!(
            a.link_graph_at(1.0).edges().collect::<Vec<_>>(),
            b.link_graph_at(1.0).edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn pages_are_born_over_time() {
        let mut w = World::bootstrap(small_config()).unwrap();
        let before = w.num_pages();
        w.run_until(2.0);
        let born = w.num_pages() - before;
        // expected 10/unit * 2 units = ~20 births
        assert!((5..=60).contains(&born), "births {born}");
    }

    #[test]
    fn popularity_grows_toward_quality() {
        // with a high visit ratio and long run, popularity approaches Q
        let cfg = SimConfig {
            num_users: 400,
            num_sites: 2,
            visit_ratio: 6.0,
            page_birth_rate: 0.0,
            quality_dist: crate::QualityDist::Fixed(0.5),
            dt: 0.05,
            seed: 13,
            ..Default::default()
        };
        let mut w = World::bootstrap(cfg).unwrap();
        w.run_until(15.0);
        // site roots have been visited plenty; popularity ~ quality
        for &root in w.site_roots() {
            let pop = w.popularity(root);
            assert!(
                (pop - 0.5).abs() < 0.12,
                "root popularity {pop} should approach quality 0.5"
            );
            let aw = w.awareness(root);
            assert!(aw > 0.9, "awareness {aw} should saturate");
        }
    }

    #[test]
    fn popularity_never_exceeds_awareness() {
        let mut w = World::bootstrap(small_config()).unwrap();
        w.run_until(3.0);
        for p in 0..w.num_pages() as u32 {
            assert!(w.popularity(p) <= w.awareness(p) + 1e-12);
        }
    }

    #[test]
    fn all_pages_crawlable_from_their_site_root() {
        let mut w = World::bootstrap(small_config()).unwrap();
        w.run_until(2.0);
        let g = w.link_graph_at(w.time());
        for &root in w.site_roots() {
            let reached: std::collections::HashSet<u32> =
                qrank_graph::traversal::bfs(&g, root).into_iter().collect();
            for (p, info) in w.pages.iter().enumerate() {
                if w.site_roots[info.site as usize] == root {
                    assert!(reached.contains(&(p as u32)), "page {p} unreachable");
                }
            }
        }
    }

    #[test]
    fn forgetting_reduces_popularity() {
        let base = SimConfig {
            num_users: 400,
            num_sites: 3,
            visit_ratio: 4.0,
            page_birth_rate: 0.0,
            quality_dist: crate::QualityDist::Fixed(0.6),
            dt: 0.05,
            seed: 17,
            ..Default::default()
        };
        let mut keep = World::bootstrap(base).unwrap();
        let mut forget = World::bootstrap(SimConfig {
            forget_rate: 2.0,
            ..base
        })
        .unwrap();
        keep.run_until(12.0);
        forget.run_until(12.0);
        let avg = |w: &World| {
            let roots = w.site_roots();
            roots.iter().map(|&r| w.popularity(r)).sum::<f64>() / roots.len() as f64
        };
        assert!(
            avg(&forget) < avg(&keep) * 0.8,
            "forgetting should depress popularity: {} vs {}",
            avg(&forget),
            avg(&keep)
        );
    }

    #[test]
    fn forgetting_removes_like_links_but_not_navigation() {
        let cfg = SimConfig {
            num_users: 200,
            num_sites: 2,
            visit_ratio: 5.0,
            page_birth_rate: 5.0,
            quality_dist: crate::QualityDist::Fixed(0.8),
            forget_rate: 5.0,
            dt: 0.05,
            seed: 19,
            ..Default::default()
        };
        let mut w = World::bootstrap(cfg).unwrap();
        w.run_until(6.0);
        // navigation links intact: everything still crawlable
        let g = w.link_graph_at(w.time());
        for &root in w.site_roots() {
            let reached: std::collections::HashSet<u32> =
                qrank_graph::traversal::bfs(&g, root).into_iter().collect();
            for (p, info) in w.pages.iter().enumerate() {
                if w.site_roots[info.site as usize] == root {
                    assert!(reached.contains(&(p as u32)));
                }
            }
        }
    }

    #[test]
    fn pagerank_visit_model_runs_and_differs() {
        let base = SimConfig {
            num_users: 200,
            num_sites: 3,
            page_birth_rate: 5.0,
            dt: 0.1,
            seed: 23,
            ..Default::default()
        };
        let mut by_pop = World::bootstrap(base).unwrap();
        let mut by_pr = World::bootstrap(SimConfig {
            visit_model: VisitModel::ByPageRank,
            ..base
        })
        .unwrap();
        by_pop.run_until(3.0);
        by_pr.run_until(3.0);
        // both advanced; trajectories differ (rich-get-richer vs model)
        assert!(by_pr.num_pages() > 200);
        let pops_a: Vec<f64> = (0..by_pop.site_roots().len())
            .map(|i| by_pop.popularity(by_pop.site_roots()[i]))
            .collect();
        let pops_b: Vec<f64> = (0..by_pr.site_roots().len())
            .map(|i| by_pr.popularity(by_pr.site_roots()[i]))
            .collect();
        assert_ne!(pops_a, pops_b);
    }

    #[test]
    fn search_rank_exposure_starves_the_tail() {
        // Under position-biased exposure, bottom-ranked pages receive
        // almost no visits: their awareness stays near the author alone,
        // while the uniform-popularity world spreads discovery broadly.
        let base = SimConfig {
            num_users: 400,
            num_sites: 5,
            visit_ratio: 2.0,
            page_birth_rate: 20.0,
            quality_dist: crate::QualityDist::Fixed(0.7),
            dt: 0.1,
            seed: 29,
            ..Default::default()
        };
        let mut fair = World::bootstrap(base).unwrap();
        let mut biased = World::bootstrap(SimConfig {
            visit_model: VisitModel::BySearchRank { bias: 1.5 },
            ..base
        })
        .unwrap();
        fair.run_until(6.0);
        biased.run_until(6.0);
        // compare awareness of late-born pages (the discovery-starved
        // cohort) between the two worlds
        let late_awareness = |w: &World| -> f64 {
            let mut sum = 0.0f64;
            let mut count = 0.0f64;
            for p in 0..w.num_pages() as u32 {
                if w.page(p).created_at > 2.0 {
                    sum += w.awareness(p);
                    count += 1.0;
                }
            }
            sum / count.max(1.0)
        };
        let fair_aw = late_awareness(&fair);
        let biased_aw = late_awareness(&biased);
        assert!(
            biased_aw < fair_aw,
            "position bias should starve young pages: {biased_aw} vs {fair_aw}"
        );
    }

    #[test]
    fn site_popularity_bounds_page_popularity() {
        let mut w = World::bootstrap(small_config()).unwrap();
        w.run_until(3.0);
        for site in 0..w.config().num_sites as u32 {
            let sp = w.site_popularity(site);
            assert!((0.0..=1.0).contains(&sp));
            // at least as popular as its most popular page
            let max_page = w.site_pages[site as usize]
                .iter()
                .map(|&p| w.popularity(p))
                .fold(0.0f64, f64::max);
            assert!(sp >= max_page - 1e-12, "site {site}: {sp} < {max_page}");
        }
    }

    #[test]
    fn link_graph_time_travel() {
        let mut w = World::bootstrap(small_config()).unwrap();
        w.run_until(2.0);
        let early = w.link_graph_at(0.0);
        let late = w.link_graph_at(2.0);
        assert!(late.num_edges() > early.num_edges());
        // both over the full page id space
        assert_eq!(early.num_nodes(), late.num_nodes());
        let (alive_early, map) = w.alive_graph_at(0.0);
        assert_eq!(alive_early.num_nodes(), map.len());
        assert_eq!(map.len(), 305); // only bootstrap pages existed at t=0
    }
}
