//! Single-page Monte-Carlo validation of the user-visitation model.
//!
//! The closed forms of `qrank-model` (Theorem 1 etc.) are derived in a
//! continuum limit. This module simulates *one page* at the level of
//! individual stochastic visits — the third, fully independent derivation
//! of the popularity curve (closed form, RK4, Monte Carlo) — so the
//! cross-validation tests can show all three agree.

use qrank_model::ModelParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dist::sample_poisson;
use crate::indexed_set::IndexedSet;

/// Simulate a single page under the user-visitation model and return its
/// popularity trajectory sampled after every step.
///
/// * visits per step: `Poisson(r · P(t) · dt)` (Proposition 1),
/// * each visit by a uniformly random user (Proposition 2),
/// * a newly-aware user likes the page with probability `Q` (Definition 1).
///
/// `params.num_users` is rounded to an integer population; the initial
/// `initial_popularity · n` users (at least one) like the page from the
/// start.
pub fn simulate_single_page(
    params: &ModelParams,
    dt: f64,
    t_max: f64,
    seed: u64,
) -> Vec<(f64, f64)> {
    assert!(dt > 0.0 && t_max >= 0.0, "need dt > 0 and t_max >= 0");
    let n = params.num_users.round().max(1.0) as u64;
    let r = params.visits_per_unit_time;
    let q = params.quality;
    let mut rng = StdRng::seed_from_u64(seed);

    let mut aware = IndexedSet::new();
    let mut likes: u64 = 0;
    let initial = ((params.initial_popularity * n as f64).round() as u64).max(1);
    for u in 0..initial.min(n) {
        aware.insert(u as u32);
        likes += 1;
    }

    let steps = (t_max / dt).ceil() as usize;
    let mut out = Vec::with_capacity(steps + 1);
    let mut t = 0.0;
    out.push((t, likes as f64 / n as f64));
    for _ in 0..steps {
        let pop = likes as f64 / n as f64;
        let visits = sample_poisson(&mut rng, r * pop * dt);
        for _ in 0..visits {
            let user = rng.random_range(0..n) as u32;
            if aware.insert(user) && rng.random::<f64>() < q {
                likes += 1;
            }
        }
        t += dt;
        out.push((t, likes as f64 / n as f64));
    }
    out
}

/// Average several Monte-Carlo trajectories pointwise (they share the
/// same time grid).
pub fn average_trajectories(runs: &[Vec<(f64, f64)>]) -> Vec<(f64, f64)> {
    assert!(!runs.is_empty(), "need at least one run");
    let len = runs[0].len();
    assert!(
        runs.iter().all(|r| r.len() == len),
        "all runs must share a time grid"
    );
    (0..len)
        .map(|i| {
            let t = runs[0][i].0;
            let mean = runs.iter().map(|r| r[i].1).sum::<f64>() / runs.len() as f64;
            (t, mean)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrank_model::popularity::popularity;

    #[test]
    fn monte_carlo_matches_closed_form() {
        // moderate population so the MC noise is small but the test fast
        let params = ModelParams::new(0.6, 20_000.0, 40_000.0, 0.001).unwrap();
        let runs: Vec<_> = (0..24)
            .map(|s| simulate_single_page(&params, 0.05, 8.0, 100 + s))
            .collect();
        let avg = average_trajectories(&runs);
        // compare at several times
        for &(t, mc) in avg.iter().step_by(30) {
            let cf = popularity(&params, t);
            assert!(
                (mc - cf).abs() < 0.05,
                "t={t}: monte-carlo {mc} vs closed form {cf}"
            );
        }
        // end state must be near saturation at Q
        let (t_end, p_end) = *avg.last().unwrap();
        let cf_end = popularity(&params, t_end);
        assert!((p_end - cf_end).abs() < 0.05, "end {p_end} vs {cf_end}");
    }

    #[test]
    fn trajectory_is_monotone_and_bounded() {
        let params = ModelParams::new(0.4, 5_000.0, 20_000.0, 0.001).unwrap();
        let run = simulate_single_page(&params, 0.1, 10.0, 7);
        for w in run.windows(2) {
            assert!(w[1].1 >= w[0].1, "popularity decreased without forgetting");
        }
        assert!(run.iter().all(|&(_, p)| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn zero_horizon_returns_initial_point() {
        let params = ModelParams::new(0.4, 1_000.0, 1_000.0, 0.01).unwrap();
        let run = simulate_single_page(&params, 0.1, 0.0, 7);
        assert_eq!(run.len(), 1);
        assert!((run[0].1 - 0.01).abs() < 1e-3);
    }

    #[test]
    fn deterministic_per_seed() {
        let params = ModelParams::new(0.5, 2_000.0, 4_000.0, 0.005).unwrap();
        let a = simulate_single_page(&params, 0.1, 5.0, 9);
        let b = simulate_single_page(&params, 0.1, 5.0, 9);
        assert_eq!(a, b);
        let c = simulate_single_page(&params, 0.1, 5.0, 10);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "time grid")]
    fn average_rejects_mismatched_grids() {
        let _ = average_trajectories(&[vec![(0.0, 0.1)], vec![(0.0, 0.1), (1.0, 0.2)]]);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn average_rejects_empty() {
        let _ = average_trajectories(&[]);
    }
}
