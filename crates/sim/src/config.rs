//! Simulation configuration.

use serde::{Deserialize, Serialize};

use crate::QualityDist;

/// How visits are allocated to pages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VisitModel {
    /// The paper's Proposition 1: a page's visit rate is proportional to
    /// its (simple) popularity, `V(p,t) = r·P(p,t)`.
    ByPopularity,
    /// Search-engine-mediated discovery: visit rate proportional to the
    /// page's *current PageRank* on the evolving link graph. This is the
    /// "rich get richer" world of the paper's introduction — young
    /// high-quality pages are starved of visits because engines surface
    /// currently-popular pages.
    ByPageRank,
    /// Result-page exposure: pages are *ranked* by current PageRank and
    /// visits decay with rank position as `1/(rank+1)^bias` — the
    /// empirical click-through curve of a search result page. This is
    /// the harshest rich-get-richer regime: position, not score mass,
    /// decides who is seen, so the gap between rank 1 and rank 100 is
    /// enormous regardless of how close their PageRanks are.
    BySearchRank {
        /// Position-bias exponent (~1–2 empirically; larger = harsher).
        bias: f64,
    },
}

/// Full parameter set for a [`crate::World`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of web users `n` (Proposition 2's population).
    pub num_users: usize,
    /// Number of distinct sites (the paper crawls 154).
    pub num_sites: usize,
    /// Visit-rate constant `r`, *expressed as the ratio `r/n`* (visits
    /// per unit time a fully-liked page receives, per user). The model's
    /// timescale knob.
    pub visit_ratio: f64,
    /// New pages born per unit time (Poisson).
    pub page_birth_rate: f64,
    /// Quality distribution for newborn pages.
    pub quality_dist: QualityDist,
    /// Per-unit-time probability that an aware user forgets a page
    /// (0 disables the forgetting extension).
    pub forget_rate: f64,
    /// Simulation time step. Visit counts per step are Poisson with mean
    /// `V(p,t)·dt`; smaller steps approximate the continuous model more
    /// closely at higher cost.
    pub dt: f64,
    /// Visit allocation model.
    pub visit_model: VisitModel,
    /// RNG seed — every run with the same config is bit-identical.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_users: 2_000,
            num_sites: 20,
            visit_ratio: 3.0,
            page_birth_rate: 30.0,
            quality_dist: QualityDist::default(),
            forget_rate: 0.0,
            dt: 0.05,
            visit_model: VisitModel::ByPopularity,
            seed: 42,
        }
    }
}

impl SimConfig {
    /// Panic with a clear message on nonsensical parameters.
    pub fn validate(&self) {
        assert!(self.num_users >= 1, "need at least one user");
        assert!(self.num_sites >= 1, "need at least one site");
        assert!(
            self.visit_ratio > 0.0 && self.visit_ratio.is_finite(),
            "visit_ratio must be positive, got {}",
            self.visit_ratio
        );
        assert!(self.page_birth_rate >= 0.0, "page_birth_rate must be >= 0");
        assert!(self.forget_rate >= 0.0, "forget_rate must be >= 0");
        assert!(self.dt > 0.0 && self.dt.is_finite(), "dt must be positive");
        assert!(
            self.forget_rate * self.dt <= 1.0,
            "forget_rate * dt must be <= 1 (it is a per-step probability)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SimConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "user")]
    fn rejects_zero_users() {
        SimConfig {
            num_users: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "visit_ratio")]
    fn rejects_zero_visit_ratio() {
        SimConfig {
            visit_ratio: 0.0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "dt")]
    fn rejects_zero_dt() {
        SimConfig {
            dt: 0.0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "forget_rate * dt")]
    fn rejects_forget_probability_above_one() {
        SimConfig {
            forget_rate: 30.0,
            dt: 0.1,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn serde_fields_roundtrip_via_debug() {
        // smoke check that all fields are present in the Debug output
        let s = format!("{:?}", SimConfig::default());
        for field in [
            "num_users",
            "visit_ratio",
            "page_birth_rate",
            "forget_rate",
            "seed",
        ] {
            assert!(s.contains(field), "{field} missing from {s}");
        }
    }
}
