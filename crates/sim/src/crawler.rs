//! Snapshot crawler: the paper's measurement instrument.
//!
//! Section 8.1: "we downloaded pages on 154 Web sites four times over the
//! period of six months ... We downloaded pages from each site until we
//! could not reach any more pages from the site or we downloaded the
//! maximum of 200,000 pages." The crawler reproduces that protocol
//! against a [`crate::World`]: breadth-first mirror of each site from its
//! root following the link graph *as of the snapshot time*, a per-site
//! page cap, and assembly into an externally-identified
//! [`qrank_graph::Snapshot`].

use qrank_graph::traversal::bfs_limited;
use qrank_graph::{GraphError, PageId, PageSet, Snapshot, SnapshotSeries};

use crate::World;

/// Capture times for a snapshot study.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotSchedule {
    /// Times (in simulation units, months in the paper) of each capture.
    pub times: Vec<f64>,
}

impl SnapshotSchedule {
    /// The paper's Figure 4 timeline, in months relative to the first
    /// snapshot: t1 = Dec 2002 (4th week), t2 = Jan 2003 (3rd week),
    /// t3 = Feb 2003 (3rd week), t4 = Jun 2003 (4th week) — roughly
    /// 0, 1, 2, and 6 months.
    pub fn paper_timeline(start: f64) -> Self {
        SnapshotSchedule {
            times: vec![start, start + 1.0, start + 2.0, start + 6.0],
        }
    }

    /// Evenly spaced captures.
    pub fn uniform(start: f64, interval: f64, count: usize) -> Self {
        assert!(interval > 0.0, "interval must be positive");
        assert!(count >= 1, "need at least one snapshot");
        SnapshotSchedule {
            times: (0..count).map(|i| start + interval * i as f64).collect(),
        }
    }
}

/// A per-site breadth-first snapshot crawler.
#[derive(Debug, Clone, Copy)]
pub struct Crawler {
    /// Per-site page cap (the paper uses 200,000).
    pub max_pages_per_site: usize,
}

impl Default for Crawler {
    fn default() -> Self {
        Crawler {
            max_pages_per_site: 200_000,
        }
    }
}

impl Crawler {
    /// Crawl the world's link structure as of time `t` (which must not
    /// exceed the world's clock) and return a snapshot whose nodes are
    /// the crawled pages, identified by their stable page ids.
    pub fn crawl(&self, world: &World, t: f64) -> Result<Snapshot, GraphError> {
        assert!(
            t <= world.time() + 1e-12,
            "cannot crawl the future: t={t}, world at {}",
            world.time()
        );
        // memoized: repeated crawls of an unchanged world rebuild nothing
        let g = world.link_graph_arc(t);
        // Visit each site from its root; a page is captured once even if
        // reachable from several sites (first crawl wins, like a crawler
        // deduplicating by URL).
        let mut captured: Vec<u32> = Vec::new();
        let mut seen = vec![false; g.num_nodes()];
        for &root in world.site_roots() {
            // roots of sites created later than t don't exist yet
            if world.page(root).created_at > t {
                continue;
            }
            for p in bfs_limited(&g, root, self.max_pages_per_site) {
                // skip pages born after t (their edges don't exist at t,
                // but isolated future nodes are present in the full graph)
                if world.page(p).created_at > t || seen[p as usize] {
                    continue;
                }
                seen[p as usize] = true;
                captured.push(p);
            }
        }
        captured.sort_unstable();
        // `captured` is sorted, deduplicated (the `seen` mask), and
        // in-range, so the snapshot is assembled through the trusted
        // fused path: single-pass restriction, no defensive re-sort, and
        // a pre-validated page universe (page ids are the captured node
        // ids, ascending, so no duplicate check is needed either).
        let sub = g.induced_subgraph_sorted(&captured);
        let pages = PageSet::from_sorted(captured.iter().map(|&p| PageId(p as u64)).collect());
        Snapshot::from_page_set(t, sub, pages)
    }

    /// Run a full snapshot study: advance the world through the schedule,
    /// crawling at each capture time, and return the series.
    pub fn crawl_schedule(
        &self,
        world: &mut World,
        schedule: &SnapshotSchedule,
    ) -> Result<SnapshotSeries, GraphError> {
        let mut series = SnapshotSeries::new();
        for &t in &schedule.times {
            world.run_until(t);
            series.push(self.crawl(world, t)?)?;
        }
        Ok(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QualityDist, SimConfig};

    fn config() -> SimConfig {
        SimConfig {
            num_users: 250,
            num_sites: 4,
            visit_ratio: 3.0,
            page_birth_rate: 15.0,
            quality_dist: QualityDist::Uniform { lo: 0.1, hi: 0.9 },
            dt: 0.05,
            seed: 31,
            ..Default::default()
        }
    }

    #[test]
    fn paper_timeline_spacing() {
        let s = SnapshotSchedule::paper_timeline(2.0);
        assert_eq!(s.times, vec![2.0, 3.0, 4.0, 8.0]);
    }

    #[test]
    fn uniform_schedule() {
        let s = SnapshotSchedule::uniform(1.0, 0.5, 3);
        assert_eq!(s.times, vec![1.0, 1.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn uniform_rejects_zero_interval() {
        let _ = SnapshotSchedule::uniform(0.0, 0.0, 3);
    }

    #[test]
    fn crawl_captures_every_alive_page_without_cap() {
        let mut w = World::bootstrap(config()).unwrap();
        w.run_until(1.5);
        let snap = Crawler::default().crawl(&w, 1.5).unwrap();
        // every page born by t=1.5 is reachable from its site root
        let alive = (0..w.num_pages() as u32)
            .filter(|&p| w.page(p).created_at <= 1.5)
            .count();
        assert_eq!(snap.num_pages(), alive);
    }

    #[test]
    fn crawl_respects_page_cap() {
        let mut w = World::bootstrap(config()).unwrap();
        w.run_until(1.0);
        let crawler = Crawler {
            max_pages_per_site: 10,
        };
        let snap = crawler.crawl(&w, 1.0).unwrap();
        assert!(snap.num_pages() <= 10 * 4, "cap 10 per site, 4 sites");
        assert!(snap.num_pages() >= 10, "should still capture something");
    }

    #[test]
    fn crawl_at_earlier_time_sees_smaller_web() {
        let mut w = World::bootstrap(config()).unwrap();
        w.run_until(3.0);
        let c = Crawler::default();
        let early = c.crawl(&w, 0.5).unwrap();
        let late = c.crawl(&w, 3.0).unwrap();
        assert!(late.num_pages() >= early.num_pages());
        assert!(late.graph.num_edges() > early.graph.num_edges());
    }

    #[test]
    #[should_panic(expected = "future")]
    fn cannot_crawl_the_future() {
        let w = World::bootstrap(config()).unwrap();
        let _ = Crawler::default().crawl(&w, 5.0);
    }

    #[test]
    fn schedule_produces_aligned_common_pages() {
        let mut w = World::bootstrap(config()).unwrap();
        let schedule = SnapshotSchedule::paper_timeline(0.5);
        let series = Crawler::default()
            .crawl_schedule(&mut w, &schedule)
            .unwrap();
        assert_eq!(series.len(), 4);
        let common = series.common_pages();
        // bootstrap pages exist in all snapshots
        assert!(common.len() >= 250 + 4, "common pages {}", common.len());
        // pages born after the first snapshot are not common
        let first_count = series.snapshots()[0].num_pages();
        assert_eq!(
            common.len(),
            first_count,
            "all first-snapshot pages persist"
        );
        let aligned = series.aligned_to_common().unwrap();
        assert!(aligned.is_aligned());
    }

    #[test]
    fn snapshot_page_ids_match_world_pages() {
        let mut w = World::bootstrap(config()).unwrap();
        w.run_until(1.0);
        let snap = Crawler::default().crawl(&w, 1.0).unwrap();
        for (node, &pid) in snap.pages().iter().enumerate() {
            let p = pid.0 as u32;
            assert!(
                w.page(p).created_at <= 1.0,
                "node {node} maps to unborn page"
            );
        }
    }
}
