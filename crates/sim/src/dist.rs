//! Quality distributions and discrete samplers.
//!
//! Page quality `Q(p)` is an intrinsic property (Definition 1 of the
//! paper); the simulator draws it at page creation from a configurable
//! distribution. Real page quality is plausibly heavy-tailed-ish on
//! `[0, 1]` — most pages mediocre, a few excellent — which the `Beta`
//! and `Bimodal` variants capture.

use qrank_model::noise::standard_normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of intrinsic page quality on `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QualityDist {
    /// Every page has the same quality.
    Fixed(f64),
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound (> 0).
        lo: f64,
        /// Upper bound (<= 1).
        hi: f64,
    },
    /// Beta(alpha, beta) — flexible unimodal shapes on (0, 1).
    Beta {
        /// First shape parameter (> 0).
        alpha: f64,
        /// Second shape parameter (> 0).
        beta: f64,
    },
    /// Mixture: with probability `p_high`, quality ~ Uniform[0.6, 0.95];
    /// otherwise ~ Uniform[0.02, 0.3]. A crude "gems among the mediocre"
    /// web, useful for testing whether the estimator surfaces young gems.
    Bimodal {
        /// Probability of a high-quality page.
        p_high: f64,
    },
}

impl Default for QualityDist {
    fn default() -> Self {
        QualityDist::Beta {
            alpha: 2.0,
            beta: 5.0,
        }
    }
}

impl QualityDist {
    /// Sample a quality value, clamped into `[1e-6, 1.0]` so every page
    /// satisfies the model's `Q > 0` requirement.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let q = match *self {
            QualityDist::Fixed(q) => q,
            QualityDist::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi}]");
                lo + (hi - lo) * rng.random::<f64>()
            }
            QualityDist::Beta { alpha, beta } => {
                let x = sample_gamma(rng, alpha);
                let y = sample_gamma(rng, beta);
                if x + y == 0.0 {
                    0.5
                } else {
                    x / (x + y)
                }
            }
            QualityDist::Bimodal { p_high } => {
                if rng.random::<f64>() < p_high {
                    0.6 + 0.35 * rng.random::<f64>()
                } else {
                    0.02 + 0.28 * rng.random::<f64>()
                }
            }
        };
        q.clamp(1e-6, 1.0)
    }
}

/// Sample `Gamma(shape, 1)` via Marsaglia–Tsang (with the standard boost
/// for `shape < 1`).
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive, got {shape}");
    if shape < 1.0 {
        // boost: Gamma(a) = Gamma(a + 1) * U^(1/a)
        let u: f64 = rng.random();
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Sample `Poisson(lambda)`: Knuth's product method for small `lambda`,
/// normal approximation (rounded, clamped at 0) for large `lambda` where
/// the exact method would take O(lambda) time.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "lambda must be finite and >= 0, got {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
    let z = standard_normal(rng);
    (lambda + lambda.sqrt() * z + 0.5).max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn fixed_returns_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = QualityDist::Fixed(0.42);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 0.42);
        }
    }

    #[test]
    fn fixed_is_clamped() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(QualityDist::Fixed(2.0).sample(&mut rng), 1.0);
        assert_eq!(QualityDist::Fixed(0.0).sample(&mut rng), 1e-6);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = QualityDist::Uniform { lo: 0.2, hi: 0.7 };
        for _ in 0..5000 {
            let q = d.sample(&mut rng);
            assert!((0.2..=0.7).contains(&q));
        }
    }

    #[test]
    fn uniform_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = QualityDist::Uniform { lo: 0.0, hi: 1.0 };
        let samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn beta_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let (a, b) = (2.0, 5.0);
        let d = QualityDist::Beta { alpha: a, beta: b };
        let samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        let expect_mean = a / (a + b);
        let expect_var = a * b / ((a + b) * (a + b) * (a + b + 1.0));
        assert!(
            (mean - expect_mean).abs() < 0.01,
            "mean {mean} vs {expect_mean}"
        );
        assert!(
            (var - expect_var).abs() < 0.005,
            "var {var} vs {expect_var}"
        );
    }

    #[test]
    fn beta_with_shape_below_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = QualityDist::Beta {
            alpha: 0.5,
            beta: 0.5,
        };
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, _) = mean_var(&samples);
        assert!((mean - 0.5).abs() < 0.02, "arcsine mean {mean}");
        assert!(samples.iter().all(|&q| (0.0..=1.0).contains(&q)));
    }

    #[test]
    fn bimodal_respects_mixture_weight() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = QualityDist::Bimodal { p_high: 0.2 };
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let high = samples.iter().filter(|&&q| q >= 0.5).count() as f64 / samples.len() as f64;
        assert!((high - 0.2).abs() < 0.01, "high fraction {high}");
    }

    #[test]
    fn gamma_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(7);
        for shape in [0.5, 1.0, 3.5, 10.0] {
            let samples: Vec<f64> = (0..100_000)
                .map(|_| sample_gamma(&mut rng, shape))
                .collect();
            let (mean, var) = mean_var(&samples);
            assert!(
                (mean - shape).abs() < 0.05 * shape.max(1.0),
                "shape {shape} mean {mean}"
            );
            assert!(
                (var - shape).abs() < 0.1 * shape.max(1.0),
                "shape {shape} var {var}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn gamma_rejects_nonpositive_shape() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = sample_gamma(&mut rng, 0.0);
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = StdRng::seed_from_u64(10);
        let samples: Vec<f64> = (0..100_000)
            .map(|_| sample_poisson(&mut rng, 2.5) as f64)
            .collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - 2.5).abs() < 0.03, "mean {mean}");
        assert!((var - 2.5).abs() < 0.1, "var {var}");
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| sample_poisson(&mut rng, 500.0) as f64)
            .collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - 500.0).abs() < 1.0, "mean {mean}");
        assert!((var - 500.0).abs() < 20.0, "var {var}");
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn poisson_rejects_negative() {
        let mut rng = StdRng::seed_from_u64(12);
        let _ = sample_poisson(&mut rng, -1.0);
    }
}
