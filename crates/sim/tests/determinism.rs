//! The tentpole guarantee of the parallel execution layer: a simulated
//! history is a pure function of the config — **bit-identical for any
//! thread count**. Every page draws its visit-phase randomness from a
//! counter-based stream keyed on `(seed, step, page)`, so chunking the
//! pages across 1, 2, or 8 workers cannot change a single draw.

use qrank_sim::{QualityDist, SimConfig, VisitModel, World};

fn base_config() -> SimConfig {
    SimConfig {
        num_users: 400,
        num_sites: 5,
        visit_ratio: 3.0,
        page_birth_rate: 15.0,
        quality_dist: QualityDist::Uniform { lo: 0.1, hi: 0.9 },
        dt: 0.05,
        seed: 20_260_806,
        ..Default::default()
    }
}

/// Everything observable about a world: page count, per-page popularity
/// and awareness, and the full edge list of the link graph.
type Fingerprint = (usize, Vec<f64>, Vec<f64>, Vec<(u32, u32)>);

fn fingerprint(w: &World) -> Fingerprint {
    let n = w.num_pages() as u32;
    (
        w.num_pages(),
        w.popularities(),
        (0..n).map(|p| w.awareness(p)).collect(),
        w.link_graph_at(w.time()).edges().collect(),
    )
}

fn run(cfg: SimConfig, threads: usize, until: f64) -> World {
    let mut w = World::bootstrap(cfg).expect("bootstrap");
    w.set_thread_budget(threads);
    w.run_until(until);
    w
}

#[test]
fn histories_bit_identical_across_thread_counts() {
    let reference = run(base_config(), 1, 2.0);
    for threads in [2, 3, 8] {
        let w = run(base_config(), threads, 2.0);
        assert_eq!(
            fingerprint(&w),
            fingerprint(&reference),
            "history diverged at {threads} threads"
        );
    }
}

#[test]
fn forgetting_worlds_are_thread_count_independent() {
    let cfg = SimConfig {
        forget_rate: 1.5,
        ..base_config()
    };
    let reference = run(cfg, 1, 2.0);
    for threads in [2, 8] {
        let w = run(cfg, threads, 2.0);
        assert_eq!(
            fingerprint(&w),
            fingerprint(&reference),
            "forgetting history diverged at {threads} threads"
        );
    }
}

#[test]
fn pagerank_visit_model_is_thread_count_independent() {
    // Exercises the feedback loop: visit weights depend on the cached
    // PageRank, which depends on the like-link graph the visit phase
    // produced — any divergence compounds, so equality here is a strong
    // end-to-end check.
    let cfg = SimConfig {
        visit_model: VisitModel::ByPageRank,
        ..base_config()
    };
    let reference = run(cfg, 1, 1.5);
    for threads in [2, 8] {
        let w = run(cfg, threads, 1.5);
        assert_eq!(
            fingerprint(&w),
            fingerprint(&reference),
            "ByPageRank history diverged at {threads} threads"
        );
    }
}

#[test]
fn observability_does_not_perturb_the_history() {
    // Telemetry counts what a step did; it must never touch the RNG or
    // branch the simulation. Run the same config with observability off
    // and on (including the forgetting + multi-thread paths) and demand
    // bit-identical fingerprints.
    let cfg = SimConfig {
        forget_rate: 0.8,
        ..base_config()
    };
    qrank_obs::set_enabled(false);
    let off = run(cfg, 2, 2.0);
    qrank_obs::set_enabled(true);
    let on = run(cfg, 2, 2.0);
    qrank_obs::set_enabled(false);
    assert_eq!(
        fingerprint(&off),
        fingerprint(&on),
        "history diverged with observability enabled"
    );
    // and the telemetry actually recorded the steps it watched
    let steps = qrank_obs::global()
        .snapshot()
        .counter("sim.steps")
        .unwrap_or(0);
    assert!(steps >= 40, "expected ~40 steps counted, saw {steps}");
}

#[test]
fn thread_budget_is_not_part_of_the_config() {
    // The knob is runtime-only: two worlds with the same config but
    // different budgets still compare equal in every observable — so
    // serialized configs, experiment manifests, and caches never need
    // to record it.
    let a = run(base_config(), 1, 1.0);
    let b = run(base_config(), 6, 1.0);
    assert_eq!(a.config(), b.config());
    assert_eq!(fingerprint(&a), fingerprint(&b));
}
