//! Property tests over random simulator configurations: the structural
//! invariants every world must maintain regardless of parameters.

use proptest::prelude::*;
use qrank_sim::{QualityDist, SimConfig, VisitModel, World};

fn arbitrary_config() -> impl Strategy<Value = SimConfig> {
    (
        50usize..300, // users
        1usize..8,    // sites
        0.2f64..3.0,  // visit ratio
        0.0f64..20.0, // birth rate
        0.0f64..2.0,  // forget rate
        0u64..1000,   // seed
        prop::sample::select(vec![
            VisitModel::ByPopularity,
            VisitModel::ByPageRank,
            VisitModel::BySearchRank { bias: 1.2 },
        ]),
        prop::sample::select(vec![
            QualityDist::Uniform { lo: 0.05, hi: 0.95 },
            QualityDist::Fixed(0.5),
            QualityDist::Bimodal { p_high: 0.2 },
        ]),
    )
        .prop_map(
            |(
                num_users,
                num_sites,
                visit_ratio,
                page_birth_rate,
                forget_rate,
                seed,
                visit_model,
                quality_dist,
            )| {
                SimConfig {
                    num_users,
                    num_sites,
                    visit_ratio,
                    page_birth_rate,
                    forget_rate,
                    quality_dist,
                    visit_model,
                    dt: 0.25,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Core conservation laws of the agent model, under every visit
    /// model, with and without forgetting and births.
    #[test]
    fn world_invariants_hold(cfg in arbitrary_config()) {
        let mut w = World::bootstrap(cfg).expect("bootstrap");
        w.run_until(2.0);
        let n_users = cfg.num_users as f64;
        for p in 0..w.num_pages() as u32 {
            let pop = w.popularity(p);
            let aware = w.awareness(p);
            // likes are a subset of aware users
            prop_assert!(pop <= aware + 1e-12, "page {p}: pop {pop} > aware {aware}");
            prop_assert!((0.0..=1.0).contains(&pop));
            prop_assert!((0.0..=1.0).contains(&aware));
            // quality is a valid probability
            let q = w.page(p).quality;
            prop_assert!((0.0..=1.0).contains(&q));
            // the author never forgets: every page keeps >= 1 like...
            // except bootstrap root-owners may not own a homepage edge,
            // but the like itself persists
            prop_assert!(pop >= 1.0 / n_users - 1e-12, "page {p} lost its author like");
            // creation times never exceed the clock
            prop_assert!(w.page(p).created_at <= w.time() + 1e-9);
        }
        // the link graph references only existing pages
        let g = w.link_graph_at(w.time());
        prop_assert_eq!(g.num_nodes(), w.num_pages());
    }

    /// Determinism: identical configs produce identical worlds even under
    /// the PageRank-coupled visit models.
    #[test]
    fn worlds_are_deterministic(cfg in arbitrary_config()) {
        let mut a = World::bootstrap(cfg).expect("bootstrap");
        let mut b = World::bootstrap(cfg).expect("bootstrap");
        a.run_until(1.5);
        b.run_until(1.5);
        prop_assert_eq!(a.num_pages(), b.num_pages());
        for p in 0..a.num_pages() as u32 {
            prop_assert_eq!(a.popularity(p), b.popularity(p));
            prop_assert_eq!(a.awareness(p), b.awareness(p));
        }
        prop_assert_eq!(
            a.link_graph_at(1.5).num_edges(),
            b.link_graph_at(1.5).num_edges()
        );
    }
}
