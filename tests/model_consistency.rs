//! Cross-crate consistency of the user-visitation model: the closed
//! forms (qrank-model), numerical integration (qrank-model::ode), and
//! the stochastic agent simulation (qrank-sim) must tell the same story.

use qrank::model::ode::closed_form_deviation;
use qrank::model::popularity;
use qrank::model::ModelParams;
use qrank::sim::montecarlo::{average_trajectories, simulate_single_page};
use qrank::sim::{QualityDist, SimConfig, World};

#[test]
fn closed_form_solves_the_ode_for_paper_parameters() {
    for p in [ModelParams::figure1(), ModelParams::figure2()] {
        let dev = closed_form_deviation(&p, 100.0, 20_000);
        assert!(dev < 1e-7, "deviation {dev}");
    }
}

#[test]
fn monte_carlo_single_page_matches_theorem_1() {
    let params = ModelParams::new(0.5, 30_000.0, 60_000.0, 5e-4).unwrap();
    let runs: Vec<_> = (0..18)
        .map(|s| simulate_single_page(&params, 0.05, 10.0, 500 + s))
        .collect();
    let avg = average_trajectories(&runs);
    for &(t, mc) in avg.iter().step_by(40) {
        let cf = popularity::popularity(&params, t);
        assert!((mc - cf).abs() < 0.04, "t={t}: MC {mc} vs closed form {cf}");
    }
}

#[test]
fn full_world_pages_follow_the_logistic_curve() {
    // Track a site root's popularity in the full agent world and compare
    // with the closed form using the same parameters.
    let quality = 0.6;
    let n = 2_000.0;
    let params = ModelParams::new(quality, n, 2.0 * n, 1.0 / n).unwrap();

    let cfg = SimConfig {
        num_users: 2_000,
        num_sites: 2,
        visit_ratio: 2.0,
        page_birth_rate: 0.0, // frozen corpus: pure popularity dynamics
        quality_dist: QualityDist::Fixed(quality),
        dt: 0.05,
        seed: 77,
        ..Default::default()
    };
    let dt = cfg.dt;
    let mut world = World::bootstrap(cfg).expect("bootstrap");
    let root = world.site_roots()[0];

    // A page starting from a single like is a branching process: its
    // trajectory is the logistic curve of Theorem 1 with a *random time
    // shift* (take-off luck), so compare shapes after aligning the two
    // curves at their half-saturation crossings.
    let mut samples: Vec<(f64, f64)> = vec![(0.0, world.popularity(root))];
    while world.time() < 30.0 {
        world.run_until(world.time() + 0.5 * dt);
        samples.push((world.time(), world.popularity(root)));
    }
    let interp = |t: f64, pts: &[(f64, f64)]| -> f64 {
        let i = pts
            .partition_point(|&(pt, _)| pt < t)
            .min(pts.len() - 1)
            .max(1);
        let ((t0, p0), (t1, p1)) = (pts[i - 1], pts[i]);
        if t1 > t0 {
            p0 + (p1 - p0) * (t - t0) / (t1 - t0)
        } else {
            p1
        }
    };
    let crossing = |pts: &[(f64, f64)], level: f64| -> f64 {
        let i = pts
            .iter()
            .position(|&(_, p)| p >= level)
            .expect("curve must reach Q/2");
        let ((t0, p0), (t1, p1)) = (pts[i.saturating_sub(1)], pts[i]);
        if p1 > p0 {
            t0 + (t1 - t0) * (level - p0) / (p1 - p0)
        } else {
            t1
        }
    };
    let model: Vec<(f64, f64)> = (0..=600)
        .map(|k| {
            let t = k as f64 * 0.05;
            (t, popularity::popularity(&params, t))
        })
        .collect();
    let shift = crossing(&samples, quality / 2.0) - crossing(&model, quality / 2.0);
    assert!(
        shift.abs() < 8.0,
        "take-off shift {shift} implausibly large"
    );

    let mut max_err: f64 = 0.0;
    for step in 1..=12 {
        let t = step as f64;
        let sim_pop = interp(t + shift, &samples);
        let model_pop = popularity::popularity(&params, t);
        max_err = max_err.max((sim_pop - model_pop).abs());
    }
    // aligned single trajectory with n=2000: generous but meaningful
    assert!(max_err < 0.12, "world deviates from Theorem 1 by {max_err}");
    // and it must saturate near the quality (Corollary 1)
    let saturation = samples.last().unwrap().1;
    assert!(
        (saturation - quality).abs() < 0.08,
        "saturation at {saturation} vs quality {quality}"
    );
}

#[test]
fn theorem_2_discretized_recovers_quality_from_sim_popularity() {
    // The estimator identity Q = (n/r)(dP/dt)/P + P, applied to the
    // simulated popularity of a young page with finite differences.
    let quality = 0.7;
    let cfg = SimConfig {
        num_users: 5_000,
        num_sites: 2,
        visit_ratio: 1.0,
        page_birth_rate: 0.0,
        quality_dist: QualityDist::Fixed(quality),
        dt: 0.05,
        seed: 99,
        ..Default::default()
    };
    let mut world = World::bootstrap(cfg).expect("bootstrap");
    let root = world.site_roots()[0];
    // sample popularity in mid-expansion
    let (t1, t2) = (4.0, 6.0);
    world.run_until(t1);
    let p1 = world.popularity(root);
    world.run_until(t2);
    let p2 = world.popularity(root);
    assert!(p2 > p1, "page should be growing");
    let p_mid = (p1 + p2) / 2.0;
    let dpdt = (p2 - p1) / (t2 - t1);
    // n/r = 1/visit_ratio = 1.0
    let q_est = dpdt / p_mid + p_mid;
    assert!(
        (q_est - quality).abs() < 0.25,
        "discretized Theorem 2 gives {q_est}, want ~{quality}"
    );
}
