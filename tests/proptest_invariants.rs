//! Property-based tests of the core invariants, across crates.

use proptest::prelude::*;
use qrank::core::estimator::{CurrentPopularity, PaperEstimator, QualityEstimator};
use qrank::core::evaluation::relative_error;
use qrank::core::PopularityTrajectories;
use qrank::graph::{CsrGraph, GraphBuilder, NodeId, PageId};
use qrank::model::popularity;
use qrank::model::ModelParams;
use qrank::rank::{pagerank, PageRankConfig};

fn arbitrary_edges(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_nodes, 0..max_nodes), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PageRank is a probability distribution on any graph.
    #[test]
    fn pagerank_is_probability_distribution(edges in arbitrary_edges(40, 200)) {
        let g = CsrGraph::from_edges(40, &edges);
        let r = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = r.scores.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-8, "sum = {sum}");
        prop_assert!(r.scores.iter().all(|&s| s >= 0.0));
    }

    /// PageRank commutes with node relabeling: relabel(PR(g)) == PR(relabel(g)).
    #[test]
    fn pagerank_is_relabeling_equivariant(
        edges in arbitrary_edges(12, 60),
        rot in 1u32..11,
    ) {
        let n = 12u32;
        let g = CsrGraph::from_edges(n as usize, &edges);
        let perm: Vec<NodeId> = (0..n).map(|i| (i + rot) % n).collect();
        let gp = g.relabel(&perm).expect("valid permutation");
        let cfg = PageRankConfig { tolerance: 1e-13, ..Default::default() };
        let r = pagerank(&g, &cfg);
        let rp = pagerank(&gp, &cfg);
        for (old, &new) in perm.iter().enumerate() {
            let new = new as usize;
            prop_assert!(
                (r.scores[old] - rp.scores[new]).abs() < 1e-8,
                "node {old} -> {new}: {} vs {}", r.scores[old], rp.scores[new]
            );
        }
    }

    /// CSR construction round-trips through the builder regardless of
    /// insertion order and duplicates.
    #[test]
    fn builder_is_order_insensitive(edges in arbitrary_edges(30, 150), seed in 0u64..1000) {
        let a = {
            let mut b = GraphBuilder::with_nodes(30);
            b.add_edges(edges.iter().copied());
            b.build()
        };
        // shuffle deterministically and duplicate some edges
        let mut shuffled = edges.clone();
        let k = shuffled.len();
        if k > 1 {
            for i in 0..k {
                shuffled.swap(i, (seed as usize + i * 7) % k);
            }
        }
        shuffled.extend(edges.iter().take(k / 2).copied());
        let b2 = {
            let mut b = GraphBuilder::with_nodes(30);
            b.add_edges(shuffled);
            b.build()
        };
        prop_assert_eq!(a, b2);
    }

    /// Theorem 2 holds for arbitrary valid model parameters.
    #[test]
    fn theorem_2_for_random_parameters(
        q in 0.01f64..1.0,
        p0_frac in 1e-6f64..1.0,
        ratio in 0.1f64..10.0,
        t in 0.0f64..200.0,
    ) {
        let params = ModelParams::new(q, 1e6, ratio * 1e6, q * p0_frac).expect("valid");
        let estimate = popularity::quality_estimate(&params, t);
        prop_assert!((estimate - q).abs() < 1e-6, "Q = {q}, estimate = {estimate}");
        // awareness stays in [0, 1] and popularity below quality
        let a = popularity::awareness(&params, t);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
        prop_assert!(popularity::popularity(&params, t) <= q + 1e-12);
    }

    /// The paper estimator equals the current-popularity baseline
    /// whenever popularity did not change (the paper states this).
    #[test]
    fn estimator_reduces_to_baseline_on_static_trajectories(
        values in prop::collection::vec(0.01f64..10.0, 1..30),
        snapshots in 2usize..5,
    ) {
        let traj = PopularityTrajectories {
            times: (0..snapshots).map(|i| i as f64).collect(),
            values: values.iter().map(|&v| vec![v; snapshots]).collect(),
            pages: (0..values.len()).map(|i| PageId(i as u64)).collect(),
        };
        let est = PaperEstimator::default().estimate(&traj).expect("estimate");
        let base = CurrentPopularity.estimate(&traj).expect("estimate");
        prop_assert_eq!(est, base);
    }

    /// Relative error is scale-invariant: err(s*a, s*b) == err(a, b).
    #[test]
    fn relative_error_scale_invariant(
        a in 0.001f64..100.0,
        b in 0.001f64..100.0,
        s in 0.001f64..1000.0,
    ) {
        let e1 = relative_error(a, b);
        let e2 = relative_error(s * a, s * b);
        prop_assert!((e1 - e2).abs() < 1e-9 * (1.0 + e1));
    }

    /// Awareness is monotone non-decreasing in time.
    #[test]
    fn awareness_is_monotone(
        q in 0.05f64..1.0,
        t1 in 0.0f64..100.0,
        dt in 0.0f64..100.0,
    ) {
        let params = ModelParams::new(q, 1e6, 1e6, q * 1e-4).expect("valid");
        let a1 = popularity::awareness(&params, t1);
        let a2 = popularity::awareness(&params, t1 + dt);
        prop_assert!(a2 + 1e-12 >= a1);
    }

    /// Induced subgraph never invents edges: every edge of the subgraph
    /// maps back to an edge of the parent.
    #[test]
    fn induced_subgraph_is_sound(
        edges in arbitrary_edges(25, 120),
        keep in prop::collection::vec(0u32..25, 0..25),
    ) {
        let g = CsrGraph::from_edges(25, &edges);
        let (sub, map) = g.induced_subgraph(&keep);
        for (u, v) in sub.edges() {
            prop_assert!(g.has_edge(map[u as usize], map[v as usize]));
        }
        // and keeps every edge among kept nodes
        let kept: std::collections::HashSet<u32> = map.iter().copied().collect();
        let expected = g
            .edges()
            .filter(|(u, v)| kept.contains(u) && kept.contains(v))
            .count();
        prop_assert_eq!(sub.num_edges(), expected);
    }
}
