//! Cross-crate analytics integration: the cohort-bias closed forms, the
//! rank-shift machinery, OPIC-vs-PageRank on simulated crawls, and the
//! structural realism of the simulated web (power law + clustering +
//! small world).

use qrank::core::ranking::{mean_rank_of, rank_shift};
use qrank::graph::clustering::average_clustering;
use qrank::graph::stats::{degree_power_law_alpha, DegreeKind};
use qrank::model::cohort::{
    hidden_gems, pairwise_inversion_rate, time_to_overtake, CohortEnv, CohortPage,
};
use qrank::rank::{opic, pagerank, OpicPolicy, PageRankConfig};
use qrank::sim::{Crawler, QualityDist, SimConfig, World};

fn mature_world(seed: u64) -> World {
    let cfg = SimConfig {
        num_users: 500,
        num_sites: 10,
        visit_ratio: 1.0,
        page_birth_rate: 25.0,
        quality_dist: QualityDist::Uniform { lo: 0.05, hi: 0.95 },
        dt: 0.1,
        seed,
        ..Default::default()
    };
    let mut w = World::bootstrap(cfg).expect("bootstrap");
    w.run_until(8.0);
    w
}

#[test]
fn cohort_model_predicts_simulated_bias_direction() {
    // Build the cohort abstraction of the live world and check that the
    // analytic inversion rate agrees in direction with the measured one.
    let w = mature_world(3);
    let env = CohortEnv {
        visit_ratio: 1.0,
        initial_popularity: 1.0 / 500.0,
    };
    let now = w.time();
    let cohort: Vec<CohortPage> = (0..w.num_pages() as u32)
        .map(|p| CohortPage {
            quality: w.page(p).quality,
            age: now - w.page(p).created_at,
        })
        .collect();
    let analytic = pairwise_inversion_rate(&env, &cohort).expect("analytic rate");

    // measured inversion rate of actual popularity vs quality (sampled)
    let mut inverted = 0usize;
    let mut comparable = 0usize;
    let n = w.num_pages() as u32;
    for i in (0..n).step_by(7) {
        for j in ((i + 1)..n).step_by(11) {
            let dq = w.page(i).quality - w.page(j).quality;
            let dp = w.popularity(i) - w.popularity(j);
            if dq == 0.0 || dp == 0.0 {
                continue;
            }
            comparable += 1;
            if (dq > 0.0) != (dp > 0.0) {
                inverted += 1;
            }
        }
    }
    let measured = inverted as f64 / comparable as f64;
    // both must show substantial (but sub-random) bias, same ballpark
    assert!(analytic > 0.02 && analytic < 0.5, "analytic {analytic}");
    assert!(measured > 0.02 && measured < 0.5, "measured {measured}");
    assert!(
        (analytic - measured).abs() < 0.2,
        "analytic {analytic} vs measured {measured}"
    );
}

#[test]
fn hidden_gems_exist_and_are_young() {
    let w = mature_world(5);
    let env = CohortEnv {
        visit_ratio: 1.0,
        initial_popularity: 1.0 / 500.0,
    };
    let now = w.time();
    let cohort: Vec<CohortPage> = (0..w.num_pages() as u32)
        .map(|p| CohortPage {
            quality: w.page(p).quality,
            age: now - w.page(p).created_at,
        })
        .collect();
    let gems = hidden_gems(&env, &cohort, 0.7, 0.1).expect("gems");
    assert!(!gems.is_empty(), "a growing web always has fresh quality");
    for &g in &gems {
        assert!(
            cohort[g].age < 6.0,
            "hidden gems should be young, got age {}",
            cohort[g].age
        );
    }
    // and overtake math: a 0.9 page overtakes a mature 0.3 page in
    // finite time, faster with higher visit ratios
    let slow = CohortEnv {
        visit_ratio: 0.5,
        initial_popularity: 1.0 / 500.0,
    };
    let fast = CohortEnv {
        visit_ratio: 2.0,
        initial_popularity: 1.0 / 500.0,
    };
    let t_slow = time_to_overtake(&slow, 0.9, 0.3).unwrap().unwrap();
    let t_fast = time_to_overtake(&fast, 0.9, 0.3).unwrap().unwrap();
    assert!(t_fast < t_slow);
}

#[test]
fn quality_reranking_promotes_young_quality_pages() {
    let w = mature_world(7);
    let snap = Crawler::default().crawl(&w, w.time()).expect("crawl");
    let pr = pagerank(&snap.graph, &PageRankConfig::default());
    // hypothetical quality-true scores (what a perfect estimator gives)
    let truth: Vec<f64> = snap
        .pages()
        .iter()
        .map(|pid| w.page(pid.0 as u32).quality)
        .collect();
    let shift = rank_shift(&pr.scores, &truth, 20);
    // the two rankings must genuinely differ
    assert!(shift.mean_abs_shift > 1.0);
    // young high-quality pages move up on average
    let now = w.time();
    let gems: Vec<usize> = snap
        .pages()
        .iter()
        .enumerate()
        .filter(|(_, pid)| {
            let info = w.page(pid.0 as u32);
            info.quality > 0.7 && now - info.created_at < 2.0
        })
        .map(|(i, _)| i)
        .collect();
    if gems.len() >= 3 {
        let by_pr = mean_rank_of(&pr.scores, &gems);
        let by_truth = mean_rank_of(&truth, &gems);
        assert!(
            by_truth < by_pr,
            "gems should rank better under quality: {by_truth} vs {by_pr}"
        );
    }
}

#[test]
fn opic_approximates_pagerank_on_simulated_crawl() {
    let w = mature_world(9);
    let snap = Crawler::default().crawl(&w, w.time()).expect("crawl");
    let pr = pagerank(&snap.graph, &PageRankConfig::default());
    let op = opic(
        &snap.graph,
        0.85,
        snap.graph.num_nodes() * 100,
        OpicPolicy::RoundRobin,
    );
    let rho = qrank::core::correlation::spearman(&pr.scores, &op.scores);
    assert!(rho > 0.9, "OPIC should track PageRank: spearman {rho}");
}

#[test]
fn simulated_web_is_web_like() {
    let w = mature_world(11);
    let snap = Crawler::default().crawl(&w, w.time()).expect("crawl");
    let g = &snap.graph;
    // heavy-tailed in-degree
    let alpha = degree_power_law_alpha(g, DegreeKind::In, 3);
    assert!(alpha.is_some(), "power-law fit should be estimable");
    let alpha = alpha.unwrap();
    assert!((1.2..6.0).contains(&alpha), "alpha {alpha}");
    // clustered (site structure + homepage hubs)
    let c = average_clustering(g);
    assert!(c > 0.01, "clustering {c}");
    // navigable: site roots reach everything (checked by crawler), and
    // the whole crawl is one weak component
    let (_, wcc) = qrank::graph::traversal::weakly_connected_components(g);
    assert_eq!(wcc, 1, "crawled web should be weakly connected");
}
