//! Paper-scale capacity check: the paper computes PageRank over 2.7
//! million common pages. This test builds a graph of that size and runs
//! the full ranking + estimation machinery over it.
//!
//! Ignored by default (it needs a few GB of RAM and a couple of minutes
//! in release mode); run with
//! `cargo test --release --test paper_scale -- --ignored`.

use qrank::core::estimator::{PaperEstimator, QualityEstimator};
use qrank::core::PopularityTrajectories;
use qrank::graph::generators::barabasi_albert;
use qrank::graph::PageId;
use qrank::rank::{pagerank, pagerank_warm, PageRankConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
#[ignore = "multi-GB, minutes-long capacity test; run explicitly in release mode"]
fn two_point_seven_million_pages() {
    let n = 2_700_000;
    let mut rng = StdRng::seed_from_u64(2005);
    let g = barabasi_albert(n, 5, &mut rng);
    assert_eq!(g.num_nodes(), n);

    let cfg = PageRankConfig {
        tolerance: 1e-8,
        ..Default::default()
    };
    let t1 = pagerank(&g, &cfg);
    assert!(t1.converged, "cold solve must converge");
    let sum: f64 = t1.scores.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6);

    // "second snapshot": add a sprinkle of edges, warm-start
    let mut edges: Vec<(u32, u32)> = g.edges().collect();
    for i in 0..1_000u32 {
        edges.push((n as u32 - 1 - i, i));
    }
    let g2 = qrank::graph::CsrGraph::from_edges(n, &edges);
    let t2 = pagerank_warm(&g2, &cfg, Some(&t1.scores));
    assert!(t2.converged);
    assert!(
        t2.iterations < t1.iterations,
        "warm start should save iterations at scale: {} vs {}",
        t2.iterations,
        t1.iterations
    );

    // run the estimator over the full corpus
    let traj = PopularityTrajectories {
        times: vec![0.0, 1.0],
        values: t1
            .scores
            .iter()
            .zip(&t2.scores)
            .map(|(&a, &b)| vec![a, b])
            .collect(),
        pages: (0..n as u64).map(PageId).collect(),
    };
    let estimates = PaperEstimator::default().estimate(&traj).expect("estimate");
    assert_eq!(estimates.len(), n);
    assert!(estimates.iter().all(|e| e.is_finite()));
}
