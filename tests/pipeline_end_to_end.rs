//! End-to-end integration: simulate a web, crawl it on the paper's
//! timeline, estimate quality, evaluate against the held-out future
//! snapshot — the full Section 8 protocol across all five crates.

use qrank::core::{run_pipeline, run_pipeline_with, PipelineConfig, PopularityMetric};
use qrank::sim::{Crawler, QualityDist, SimConfig, SnapshotSchedule, World};

fn study(seed: u64) -> (qrank::graph::SnapshotSeries, World) {
    let cfg = SimConfig {
        num_users: 600,
        num_sites: 12,
        visit_ratio: 0.8,
        page_birth_rate: 25.0,
        quality_dist: QualityDist::Uniform { lo: 0.05, hi: 0.95 },
        dt: 0.1,
        seed,
        ..Default::default()
    };
    let mut world = World::bootstrap(cfg).expect("bootstrap");
    let schedule = SnapshotSchedule::paper_timeline(12.0);
    let series = Crawler::default()
        .crawl_schedule(&mut world, &schedule)
        .expect("crawl");
    (series, world)
}

#[test]
fn estimator_beats_current_pagerank_baseline() {
    let (series, _world) = study(11);
    let report = run_pipeline(
        &series,
        &PipelineConfig {
            c: 1.0,
            ..Default::default()
        },
    )
    .expect("pipeline");
    assert!(
        report.num_selected() > 30,
        "selected {}",
        report.num_selected()
    );
    assert!(
        report.summary_estimate.mean_error < report.summary_current.mean_error,
        "estimate err {} should beat baseline err {}",
        report.summary_estimate.mean_error,
        report.summary_current.mean_error
    );
    assert!(
        report.summary_estimate.frac_below_01 >= report.summary_current.frac_below_01,
        "histogram low-error mass should favor the estimator"
    );
}

#[test]
fn estimator_correlates_with_ground_truth_quality() {
    use qrank::core::correlation::spearman;
    let (series, world) = study(13);
    let report = run_pipeline(
        &series,
        &PipelineConfig {
            c: 1.0,
            ..Default::default()
        },
    )
    .expect("pipeline");
    let truths: Vec<f64> = report
        .pages
        .iter()
        .map(|p| world.page(p.0 as u32).quality)
        .collect();
    let rho_est = spearman(&report.estimates, &truths);
    let rho_cur = spearman(&report.current, &truths);
    // both correlate (popularity tracks quality under the model), and
    // the estimator should not be worse
    assert!(rho_est > 0.2, "estimate-truth spearman {rho_est}");
    assert!(
        rho_est >= rho_cur - 0.02,
        "estimator rank quality {rho_est} should be >= baseline {rho_cur}"
    );
}

#[test]
fn indegree_metric_also_works_end_to_end() {
    let (series, _world) = study(17);
    let report = run_pipeline_with(
        &series,
        &PopularityMetric::InDegree,
        &qrank::core::PaperEstimator {
            c: 1.0,
            flat_tolerance: 0.0,
        },
        0.05,
    )
    .expect("pipeline");
    assert!(report.num_selected() > 10);
    // footnote 4 of the paper: link counts can substitute for PageRank
    assert!(
        report.summary_estimate.mean_error <= report.summary_current.mean_error * 1.05,
        "indegree estimator {} vs baseline {}",
        report.summary_estimate.mean_error,
        report.summary_current.mean_error
    );
}

#[test]
fn deterministic_pipeline_given_seed() {
    let (series_a, _) = study(19);
    let (series_b, _) = study(19);
    let cfg = PipelineConfig::default();
    let a = run_pipeline(&series_a, &cfg).expect("pipeline a");
    let b = run_pipeline(&series_b, &cfg).expect("pipeline b");
    assert_eq!(a.pages, b.pages);
    assert_eq!(a.estimates, b.estimates);
    assert_eq!(a.summary_estimate.mean_error, b.summary_estimate.mean_error);
}

#[test]
fn common_pages_shrink_as_web_grows() {
    let (series, world) = study(23);
    let common = series.common_pages();
    let last = series.snapshots().last().expect("4 snapshots");
    assert!(
        common.len() < last.num_pages(),
        "new pages must appear after t1"
    );
    assert!(common.len() > 500, "bootstrap pages persist");
    assert!(world.num_pages() >= last.num_pages());
}

#[test]
fn warm_started_trajectories_match_cold_computation() {
    use qrank::core::trajectory::compute_trajectories;
    let (series, _world) = study(29);
    let aligned = series.aligned_to_common().expect("align");
    let metric = PopularityMetric::paper_pagerank();
    let warm = compute_trajectories(&aligned, &metric).expect("warm");
    for (k, snap) in aligned.snapshots().iter().enumerate() {
        let cold = metric.compute(&snap.graph);
        for (p, &c) in cold.iter().enumerate() {
            assert!(
                (warm.values[p][k] - c).abs() < 1e-5,
                "snapshot {k} page {p}: warm {} vs cold {c}",
                warm.values[p][k]
            );
        }
    }
}
