//! All PageRank solvers agree on realistic (simulated-crawl) graphs, and
//! the ranking substrate behaves sanely on web-shaped inputs.

use qrank::graph::generators::{barabasi_albert, site_structured, SiteWebParams};
use qrank::rank::adaptive::AdaptiveConfig;
use qrank::rank::{
    adaptive, extrapolated, gauss_seidel, pagerank, parallel_pagerank, PageRankConfig,
};
use qrank::sim::{Crawler, SimConfig, World};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn crawl_graph(seed: u64) -> qrank::graph::CsrGraph {
    let cfg = SimConfig {
        num_users: 400,
        num_sites: 8,
        visit_ratio: 1.5,
        page_birth_rate: 20.0,
        dt: 0.1,
        seed,
        ..Default::default()
    };
    let mut world = World::bootstrap(cfg).expect("bootstrap");
    world.run_until(4.0);
    Crawler::default().crawl(&world, 4.0).expect("crawl").graph
}

#[test]
fn all_solvers_agree_on_simulated_crawl() {
    let g = crawl_graph(41);
    let cfg = PageRankConfig {
        tolerance: 1e-12,
        ..Default::default()
    };
    let reference = pagerank(&g, &cfg);
    assert!(reference.converged);

    let gs = gauss_seidel(&g, &cfg);
    let ex = extrapolated(&g, &cfg, 6);
    let par = parallel_pagerank(&g, &cfg, 4);
    let ad = adaptive(&g, &cfg, &AdaptiveConfig::default());

    for (name, scores) in [
        ("gauss-seidel", &gs.scores),
        ("extrapolated", &ex.scores),
        ("parallel", &par.scores),
        ("adaptive", &ad.result.scores),
    ] {
        for (i, (a, b)) in reference.scores.iter().zip(scores.iter()).enumerate() {
            assert!((a - b).abs() < 1e-6, "{name} node {i}: {a} vs {b}");
        }
    }
}

#[test]
fn site_roots_earn_high_pagerank() {
    // navigation structure funnels rank to roots; the top of the ranking
    // should be dominated by site roots in a young web
    let cfg = SimConfig {
        num_users: 400,
        num_sites: 10,
        visit_ratio: 1.5,
        page_birth_rate: 20.0,
        dt: 0.1,
        seed: 43,
        ..Default::default()
    };
    let mut world = World::bootstrap(cfg).expect("bootstrap");
    world.run_until(3.0);
    let snap = Crawler::default().crawl(&world, 3.0).expect("crawl");
    let pr = pagerank(&snap.graph, &PageRankConfig::default());
    let ranking = pr.ranking();
    let roots: std::collections::HashSet<u64> =
        world.site_roots().iter().map(|&r| r as u64).collect();
    let top10_roots = ranking
        .iter()
        .take(10)
        .filter(|&&n| roots.contains(&snap.pages()[n as usize].0))
        .count();
    assert!(top10_roots >= 5, "only {top10_roots} roots in the top 10");
}

#[test]
fn pagerank_scale_invariance_between_conventions() {
    // paper-style scores are exactly N times probability-style scores,
    // so ratios like dPR/PR are identical under either convention
    let g = crawl_graph(47);
    let prob = pagerank(&g, &PageRankConfig::default());
    let paper = pagerank(&g, &PageRankConfig::paper_style(0.15));
    let n = g.num_nodes() as f64;
    for (p, q) in prob.scores.iter().zip(&paper.scores) {
        assert!((p * n - q).abs() < 1e-8);
    }
}

#[test]
fn generators_feed_rankers() {
    let mut rng = StdRng::seed_from_u64(53);
    let ba = barabasi_albert(2_000, 3, &mut rng);
    let r = pagerank(&ba, &PageRankConfig::default());
    assert!(r.converged);
    // preferential attachment: early nodes accumulate rank
    let early_mean: f64 = r.scores[..50].iter().sum::<f64>() / 50.0;
    let late_mean: f64 = r.scores[1950..].iter().sum::<f64>() / 50.0;
    assert!(
        early_mean > 3.0 * late_mean,
        "rich-get-richer: early {early_mean} vs late {late_mean}"
    );

    let web = site_structured(&SiteWebParams::default(), &mut rng);
    let r = pagerank(&web.graph, &PageRankConfig::default());
    assert!(r.converged);
    let sum: f64 = r.scores.iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
}
