//! Snapshot-series serialization: a crawled corpus survives the binary
//! round trip bit-for-bit, so estimation can be decoupled from
//! simulation/crawling.

use qrank::core::{run_pipeline, PipelineConfig};
use qrank::graph::io::{decode_series, encode_series};
use qrank::sim::{Crawler, SimConfig, SnapshotSchedule, World};

fn crawl_series() -> qrank::graph::SnapshotSeries {
    let cfg = SimConfig {
        num_users: 300,
        num_sites: 6,
        visit_ratio: 1.5,
        page_birth_rate: 15.0,
        dt: 0.1,
        seed: 31,
        ..Default::default()
    };
    let mut world = World::bootstrap(cfg).expect("bootstrap");
    let schedule = SnapshotSchedule::uniform(2.0, 1.0, 4);
    Crawler::default()
        .crawl_schedule(&mut world, &schedule)
        .expect("crawl")
}

#[test]
fn crawled_series_roundtrips_exactly() {
    let series = crawl_series();
    let bytes = encode_series(&series);
    let back = decode_series(&bytes).expect("decode");
    assert_eq!(back.len(), series.len());
    assert_eq!(back.times(), series.times());
    for (a, b) in series.snapshots().iter().zip(back.snapshots()) {
        assert_eq!(a.pages(), b.pages());
        assert_eq!(a.graph, b.graph);
    }
}

#[test]
fn pipeline_results_identical_after_roundtrip() {
    let series = crawl_series();
    let back = decode_series(&encode_series(&series)).expect("decode");
    let cfg = PipelineConfig::default();
    let a = run_pipeline(&series, &cfg).expect("pipeline");
    let b = run_pipeline(&back, &cfg).expect("pipeline");
    assert_eq!(a.pages, b.pages);
    assert_eq!(a.estimates, b.estimates);
    assert_eq!(a.err_estimate, b.err_estimate);
}

#[test]
fn corrupted_payload_is_rejected_not_misread() {
    let series = crawl_series();
    let bytes = encode_series(&series);
    // truncate at several depths: always an error, never a panic or a
    // silently wrong series
    for cut in [0, 3, 10, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            decode_series(&bytes[..cut]).is_err(),
            "cut at {cut} should fail"
        );
    }
    let mut bad = bytes.to_vec();
    bad[0] ^= 0x55;
    assert!(decode_series(&bad).is_err());
}
