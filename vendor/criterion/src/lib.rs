//! Offline shim of `criterion`: runs each benchmark a handful of times
//! and prints mean wall-clock time per iteration. No statistics, no
//! HTML reports — just enough to keep `cargo bench` compiling and
//! producing a rough number in an offline environment.

use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark driver (shim: fixed small sample count).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

/// Timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration of the last `iter` call.
    pub mean_ns: f64,
}

impl Bencher {
    /// Time `f`, running it `samples` times after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

fn run_one(samples: usize, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        mean_ns: 0.0,
    };
    f(&mut b);
    println!(
        "bench {label}: {:.0} ns/iter ({samples} samples)",
        b.mean_ns
    );
}

impl Criterion {
    /// Run a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(self.sample_size, &id.into().0, &mut f);
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }
}

/// Group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(self.sample_size, &label, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.sample_size, &label, &mut |b| f(b, input));
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Define a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3)
            .bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| b.iter(|| x * x));
        g.finish();
    }
}
