//! Offline shim of the `rand` 0.9 API surface used by this workspace.
//!
//! Provides [`Rng`], [`RngCore`], [`SeedableRng`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic per seed and statistically solid for the
//! simulation and property tests in this repo, but *not* the same
//! stream as upstream `rand`'s ChaCha12-based `StdRng`.

/// Low-level entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, uniform bits for integers, fair `bool`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::random`].
pub trait StandardSample {
    /// Draw one value from the standard distribution for the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.random_range(3u32..=4);
            assert!(v == 3 || v == 4);
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = takes_generic(&mut rng);
        let by_ref: &mut StdRng = &mut rng;
        let _ = by_ref.random_bool(0.5);
    }
}
