//! Offline shim of `serde_derive`: the derive macros accept any input
//! and emit nothing. The workspace only uses the derives as markers —
//! no code is generic over `Serialize`/`Deserialize` bounds.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
