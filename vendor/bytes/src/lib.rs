//! Offline shim of `bytes`: `Bytes`/`BytesMut` containers plus the
//! little-endian `Buf`/`BufMut` accessors the graph I/O layer uses.

use std::ops::Deref;

/// Immutable byte buffer (shim: a plain `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer (shim: a plain `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write-side accessors (little-endian puts).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a buffer-like value wholesale.
    fn put<B: AsRef<[u8]>>(&mut self, src: B) {
        self.put_slice(src.as_ref());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a `u16`, little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append an `f64`, little-endian.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side accessors (little-endian gets that advance the cursor).
///
/// Implemented for `&[u8]`: each `get_*` consumes from the front of the
/// slice. Callers must check [`Buf::remaining`] first; reading past the
/// end panics, exactly like the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consume `n` bytes from the front.
    fn take_front(&mut self, n: usize) -> &[u8];

    /// Read a `u8`.
    fn get_u8(&mut self) -> u8 {
        self.take_front(1)[0]
    }

    /// Read a `u16`, little-endian.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_front(2).try_into().unwrap())
    }

    /// Read a `u32`, little-endian.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_front(4).try_into().unwrap())
    }

    /// Read a `u64`, little-endian.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_front(8).try_into().unwrap())
    }

    /// Read an `f64`, little-endian.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_front(8).try_into().unwrap())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_front(&mut self, n: usize) -> &[u8] {
        let (front, rest) = self.split_at(n);
        *self = rest;
        front
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u16_le(7);
        b.put_u32_le(40_000);
        b.put_u64_le(1 << 40);
        b.put_f64_le(1.25);
        b.put(Bytes::from(vec![9u8]));
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 2 + 4 + 8 + 8 + 1);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u32_le(), 40_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), 1.25);
        assert_eq!(r.get_u8(), 9);
        assert_eq!(r.remaining(), 0);
    }
}
