//! Offline shim of `serde`: marker traits plus the no-op derives from
//! the sibling `serde_derive` shim. The workspace derives
//! `Serialize`/`Deserialize` on a handful of config types but never
//! serializes through serde (output formats are hand-rolled), so marker
//! traits are sufficient.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
