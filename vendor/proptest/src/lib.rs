//! Offline shim of `proptest`: random-input testing without shrinking.
//!
//! Supports the surface this workspace uses: the [`proptest!`] macro
//! with `#![proptest_config(...)]`, [`Strategy`] implementations for
//! numeric ranges and tuples, `prop::collection::vec`,
//! `prop::sample::select`, `prop_map`, and the `prop_assert*` macros
//! (which simply panic — there is no shrinking, so a failure reports
//! the panicking case directly).

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed deterministically from a test name so every test draws an
    /// independent, reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Per-test configuration (shim: just the case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for [`proptest!`] inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// `prop::` namespace, mirroring the real crate's module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for `Vec`s with random length in `sizes`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            sizes: std::ops::Range<usize>,
        }

        /// Generate `Vec<S::Value>` with length drawn from `sizes`.
        pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, sizes }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.sizes.end - self.sizes.start).max(1) as u64;
                let len = self.sizes.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        /// Choose uniformly from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select from empty list");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Run each contained `#[test] fn name(input in strategy, ...)` over
/// `config.cases` random cases. No shrinking: a failing case panics
/// with its assertion message directly.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Shim of `prop_assert!`: plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Shim of `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Shim of `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs(max: u32) -> impl Strategy<Value = Vec<(u32, u32)>> {
        prop::collection::vec((0..max, 0..max), 0..50)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 0.5f64..2.0, z in 1u64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_strategy_respects_sizes(v in pairs(10)) {
            prop_assert!(v.len() < 50);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
        }

        #[test]
        fn select_and_map_compose(x in prop::sample::select(vec![1, 2, 3]).prop_map(|v| v * 10)) {
            prop_assert!(x == 10 || x == 20 || x == 30, "got {}", x);
            prop_assert_eq!(x % 10, 0);
        }
    }
}
