//! Offline shim of `parking_lot`: `Mutex` and `RwLock` with the
//! parking_lot calling convention (no `Result`, poison transparently
//! recovered), backed by `std::sync`.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread. A poisoned lock
    /// (a writer panicked) is recovered rather than propagated, matching
    /// parking_lot's behavior of not tracking poison at all.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
