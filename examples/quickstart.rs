//! Quickstart: build a tiny web, compute PageRank, and estimate page
//! quality from three snapshots.
//!
//! Run with `cargo run --example quickstart`.

use qrank::core::{run_pipeline, PipelineConfig};
use qrank::graph::{GraphBuilder, PageId, Snapshot, SnapshotSeries};
use qrank::rank::{pagerank, PageRankConfig};

fn main() {
    // --- 1. A small static web and its PageRank -------------------------
    let mut b = GraphBuilder::new();
    // pages: 0 = portal, 1 = old favorite, 2 = rising star, 3..5 = fans
    b.add_edges([
        (0, 1),
        (1, 0),
        (3, 1),
        (4, 1),
        (5, 1),
        (3, 0),
        (4, 0),
        (5, 0),
    ]);
    b.add_edge(5, 2); // the rising star has one early fan
    let g = b.build();

    let pr = pagerank(&g, &PageRankConfig::default());
    println!("PageRank of the initial web:");
    for (node, score) in pr.scores.iter().enumerate() {
        println!("  page {node}: {score:.4}");
    }
    println!("  (converged in {} iterations)\n", pr.iterations);

    // --- 2. Quality estimation from snapshots ---------------------------
    // Three snapshots. Page 2 keeps gaining links; page 1 is static.
    let pages: Vec<PageId> = (0..6).map(PageId).collect();
    let base = vec![
        (0u32, 1u32),
        (1, 0),
        (3, 1),
        (4, 1),
        (5, 1),
        (3, 0),
        (4, 0),
        (5, 0),
        (2, 0),
    ];
    let mut series = SnapshotSeries::new();
    let growth: [&[(u32, u32)]; 4] = [
        &[(5, 2)],
        &[(5, 2), (4, 2)],
        &[(5, 2), (4, 2), (3, 2)],
        &[(5, 2), (4, 2), (3, 2), (1, 2)],
    ];
    for (month, extra) in growth.iter().enumerate() {
        let mut builder = GraphBuilder::with_nodes(6);
        builder.add_edges(base.iter().copied());
        builder.add_edges(extra.iter().copied());
        series
            .push(Snapshot::new(month as f64, builder.build(), pages.clone()).expect("snapshot"))
            .expect("series push");
    }

    let report = run_pipeline(&series, &PipelineConfig::default()).expect("pipeline");
    println!("quality estimation (snapshots at months 0..2, future = month 3):");
    println!("  page   PR(t3)   Q(p) estimate   PR(t4) actual   trend");
    for i in 0..6 {
        println!(
            "  {}      {:.3}    {:.3}           {:.3}           {:?}",
            report.pages[i].0,
            report.current[i],
            report.estimates[i],
            report.future[i],
            report.trends[i],
        );
    }
    println!(
        "\nrising page 2: estimate {:.3} is closer to its future PageRank {:.3} than the current {:.3}",
        report.estimates[2], report.future[2], report.current[2]
    );
    println!(
        "mean relative error: quality estimate {:.3} vs current-PageRank baseline {:.3}",
        report.summary_estimate.mean_error, report.summary_current.mean_error
    );
}
