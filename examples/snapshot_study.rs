//! A complete Section 8 snapshot study at small scale: simulate a web,
//! crawl it on the paper's timeline, estimate quality, and print the
//! error comparison plus the ground-truth rank correlations the paper
//! could not measure.
//!
//! Run with `cargo run --release --example snapshot_study`.

use qrank::core::correlation::spearman;
use qrank::core::{run_pipeline, PipelineConfig};
use qrank::graph::stats::summarize;
use qrank::sim::{Crawler, QualityDist, SimConfig, SnapshotSchedule, World};

fn main() {
    let cfg = SimConfig {
        num_users: 1_000,
        num_sites: 25,
        visit_ratio: 0.8,
        page_birth_rate: 50.0,
        quality_dist: QualityDist::Uniform { lo: 0.05, hi: 0.95 },
        dt: 0.05,
        seed: 7,
        ..Default::default()
    };
    println!(
        "simulating: {} users, {} sites, births {}/month",
        cfg.num_users, cfg.num_sites, cfg.page_birth_rate
    );

    let mut world = World::bootstrap(cfg).expect("bootstrap");
    let schedule = SnapshotSchedule::paper_timeline(10.0);
    println!(
        "snapshot timeline (months): {:?}  (paper's Figure 4 spacing)\n",
        schedule.times
    );

    let series = Crawler::default()
        .crawl_schedule(&mut world, &schedule)
        .expect("crawl");
    for (i, snap) in series.snapshots().iter().enumerate() {
        let s = summarize(&snap.graph);
        println!(
            "snapshot {} (t={:>4.1}): {:>5} pages, {:>6} links, mean degree {:.2}, reciprocity {:.2}",
            i + 1,
            snap.time,
            s.nodes,
            s.edges,
            s.mean_degree,
            s.reciprocity
        );
    }
    let common = series.common_pages();
    println!("pages common to all four snapshots: {}\n", common.len());

    let report = run_pipeline(
        &series,
        &PipelineConfig {
            c: 1.0,
            ..Default::default()
        },
    )
    .expect("pipeline");
    println!(
        "pages whose PageRank changed > 5% between t1 and t3: {}",
        report.num_selected()
    );
    println!("\nprediction of the future PageRank PR(p,t4):");
    println!(
        "  quality estimate Q(p):  mean err {:.3}, {:.0}% of pages below 0.1 error",
        report.summary_estimate.mean_error,
        100.0 * report.summary_estimate.frac_below_01
    );
    println!(
        "  current PR(p,t3):       mean err {:.3}, {:.0}% of pages below 0.1 error",
        report.summary_current.mean_error,
        100.0 * report.summary_current.frac_below_01
    );
    println!(
        "  improvement factor: x{:.2}  (paper: x2.4)\n",
        report.improvement_factor()
    );

    // ground-truth comparison, possible only on a simulated corpus
    let truths: Vec<f64> = report
        .pages
        .iter()
        .map(|pid| world.page(pid.0 as u32).quality)
        .collect();
    let sel_idx: Vec<usize> = (0..report.pages.len())
        .filter(|&i| report.selected[i])
        .collect();
    let pick = |v: &[f64]| -> Vec<f64> { sel_idx.iter().map(|&i| v[i]).collect() };
    println!("rank correlation with the (hidden) true quality, over selected pages:");
    println!(
        "  spearman(Q estimate, truth) = {:.3}",
        spearman(&pick(&report.estimates), &pick(&truths))
    );
    println!(
        "  spearman(current PR, truth) = {:.3}",
        spearman(&pick(&report.current), &pick(&truths))
    );
}
