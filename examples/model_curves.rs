//! The user-visitation model's curves (Figures 1–3 of the paper),
//! plus a three-way cross-validation: closed form vs RK4 integration vs
//! Monte-Carlo agent simulation.
//!
//! Run with `cargo run --example model_curves`.

use qrank::model::ode::{closed_form_deviation, popularity_trajectory};
use qrank::model::popularity;
use qrank::model::stages::{stage_transitions, StageThresholds};
use qrank::model::ModelParams;
use qrank::sim::montecarlo::{average_trajectories, simulate_single_page};

fn sparkline(values: &[f64], max: f64) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|&v| {
            let idx = ((v / max) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

fn main() {
    // --- Figure 1 --------------------------------------------------------
    let f1 = ModelParams::figure1();
    let series1 = popularity::popularity_series(&f1, 40.0, 60);
    let values1: Vec<f64> = series1.iter().map(|&(_, p)| p).collect();
    println!("Figure 1 - P(p,t) for Q=0.8, P0=1e-8 (t in 0..40):");
    println!("  {}", sparkline(&values1, 0.8));
    let (lo, hi) = stage_transitions(&f1, StageThresholds::default());
    println!(
        "  life stages: infant until t~{:.0}, expansion until t~{:.0}, then maturity at P=Q=0.8\n",
        lo.unwrap(),
        hi.unwrap()
    );

    // --- Figure 2 --------------------------------------------------------
    let f2 = ModelParams::figure2();
    let i_vals: Vec<f64> = (0..=60)
        .map(|k| popularity::relative_increase(&f2, k as f64 * 2.5))
        .collect();
    let p_vals: Vec<f64> = (0..=60)
        .map(|k| popularity::popularity(&f2, k as f64 * 2.5))
        .collect();
    println!("Figure 2 - I(p,t) vs P(p,t) for Q=0.2, P0=1e-9 (t in 0..150):");
    println!("  I: {}", sparkline(&i_vals, 0.2));
    println!("  P: {}", sparkline(&p_vals, 0.2));
    println!("  I estimates Q early; P estimates Q late; each fails where the other works\n");

    // --- Figure 3 --------------------------------------------------------
    let q_vals: Vec<f64> = (0..=60)
        .map(|k| popularity::quality_estimate(&f2, k as f64 * 2.5))
        .collect();
    println!("Figure 3 - I(p,t) + P(p,t):");
    println!("  {}", sparkline(&q_vals, 0.2));
    let max_dev = q_vals.iter().map(|&q| (q - 0.2).abs()).fold(0.0, f64::max);
    println!("  flat at Q = 0.2 (max deviation {max_dev:.2e}) - Theorem 2\n");

    // --- Cross-validation ------------------------------------------------
    println!("cross-validation of Theorem 1 (three independent derivations):");
    let dev = closed_form_deviation(&f1, 40.0, 4000);
    println!("  closed form vs RK4 integration:    max |diff| = {dev:.2e}");

    let mc_params = ModelParams::new(0.8, 20_000.0, 40_000.0, 0.001).expect("params");
    let runs: Vec<_> = (0..6)
        .map(|s| simulate_single_page(&mc_params, 0.05, 8.0, 1000 + s))
        .collect();
    let avg = average_trajectories(&runs);
    let mc_dev = avg
        .iter()
        .map(|&(t, p)| (p - popularity::popularity(&mc_params, t)).abs())
        .fold(0.0, f64::max);
    println!("  closed form vs Monte-Carlo agents: max |diff| = {mc_dev:.3} (6 runs, n=20k users)");
    let rk4_end = popularity_trajectory(&mc_params, 8.0, 800)
        .last()
        .unwrap()
        .1;
    println!(
        "  popularity at t=8: closed form {:.4}, RK4 {:.4}, Monte Carlo {:.4}",
        popularity::popularity(&mc_params, 8.0),
        rk4_end,
        avg.last().unwrap().1
    );
}
