//! The paper's motivating scenario: surface young, high-quality pages
//! that PageRank buries.
//!
//! We simulate an established web, inject a cohort of *new high-quality
//! pages*, and compare where PageRank ranks them against where the
//! quality estimator ranks them. The "rich-get-richer" bias the paper
//! describes is visible directly: the newcomers have top-decile quality
//! but bottom-decile PageRank; the estimator moves them most of the way
//! up.
//!
//! Run with `cargo run --release --example emerging_pages`.

use qrank::core::{run_pipeline, PipelineConfig};
use qrank::sim::{Crawler, QualityDist, SimConfig, SnapshotSchedule, World};

fn mean_rank(order: &[usize], members: &std::collections::HashSet<usize>) -> f64 {
    let mut sum = 0.0;
    for (rank, idx) in order.iter().enumerate() {
        if members.contains(idx) {
            sum += rank as f64;
        }
    }
    sum / members.len() as f64
}

fn main() {
    let cfg = SimConfig {
        num_users: 1_500,
        num_sites: 30,
        visit_ratio: 0.8,
        page_birth_rate: 60.0,
        quality_dist: QualityDist::Bimodal { p_high: 0.15 },
        dt: 0.05,
        seed: 2024,
        ..Default::default()
    };
    let mut world = World::bootstrap(cfg).expect("bootstrap");

    // Let the established web mature, then measure over the paper's
    // four-snapshot timeline.
    let schedule = SnapshotSchedule::paper_timeline(10.0);
    let series = Crawler::default()
        .crawl_schedule(&mut world, &schedule)
        .expect("crawl");
    let report = run_pipeline(
        &series,
        &PipelineConfig {
            c: 1.0,
            ..Default::default()
        },
    )
    .expect("pipeline");

    // "Emerging gems": pages born in the 3 months before the first
    // snapshot with top-tier quality.
    let t1 = schedule.times[0];
    let mut gems = std::collections::HashSet::new();
    for (i, pid) in report.pages.iter().enumerate() {
        let info = world.page(pid.0 as u32);
        if info.created_at > t1 - 3.0 && info.quality > 0.6 {
            gems.insert(i);
        }
    }
    println!(
        "corpus: {} common pages, {} emerging gems (born < 3 months before t1, quality > 0.6)\n",
        report.pages.len(),
        gems.len()
    );
    if gems.is_empty() {
        println!("no gems this seed; try another");
        return;
    }

    // Rank pages by current PageRank and by the quality estimate.
    let rank_order = |scores: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("no NaN"));
        idx
    };
    let by_pr = rank_order(&report.current);
    let by_q = rank_order(&report.estimates);
    let by_future = rank_order(&report.future);

    let n = report.pages.len() as f64;
    println!(
        "mean rank of the emerging gems (0 = best, {} pages):",
        report.pages.len()
    );
    println!(
        "  by current PageRank (t3):    {:>7.1}  (percentile {:.0}%)",
        mean_rank(&by_pr, &gems),
        100.0 * (1.0 - mean_rank(&by_pr, &gems) / n)
    );
    println!(
        "  by quality estimate:         {:>7.1}  (percentile {:.0}%)",
        mean_rank(&by_q, &gems),
        100.0 * (1.0 - mean_rank(&by_q, &gems) / n)
    );
    println!(
        "  by future PageRank (t4):     {:>7.1}  (percentile {:.0}%)",
        mean_rank(&by_future, &gems),
        100.0 * (1.0 - mean_rank(&by_future, &gems) / n)
    );
    println!(
        "\nthe estimator ranks the gems {} positions higher than current PageRank does,",
        (mean_rank(&by_pr, &gems) - mean_rank(&by_q, &gems)).round()
    );
    println!("anticipating where the future PageRank will put them - the paper's goal of");
    println!("\"help[ing] new and high-quality pages get the attention that they deserve\".");
}
