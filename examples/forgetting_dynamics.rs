//! The paper's "decreasing popularity" future-work item, end to end:
//! users forget pages, popularity declines, and the analytic forgetting
//! model predicts the simulated decline.
//!
//! The paper observed that "many pages in our dataset showed consistent
//! decrease in their PageRanks" and proposed modeling user forgetting.
//! Here we (1) run the agent simulator with a forgetting rate, (2) show
//! a page born popular declining toward the model's effective quality
//! `Q_eff = Q − φ·n/r`, and (3) show the estimator's predictable bias.
//!
//! Run with `cargo run --release --example forgetting_dynamics`.

use qrank::model::forgetting::ForgettingModel;
use qrank::model::ModelParams;
use qrank::sim::{QualityDist, SimConfig, World};

fn main() {
    let quality = 0.6;
    let forget_rate = 0.3;
    let visit_ratio = 1.5;
    let users = 3_000;

    println!(
        "forgetting dynamics: Q = {quality}, forget rate = {forget_rate}, r/n = {visit_ratio}"
    );
    let base = ModelParams::new(
        quality,
        users as f64,
        visit_ratio * users as f64,
        1.0 / users as f64,
    )
    .expect("params");
    let model = ForgettingModel::new(base, forget_rate).expect("model");
    println!(
        "analytic prediction: popularity saturates at Q_eff = Q - phi*n/r = {:.3} (not Q = {quality})",
        model.effective_quality()
    );
    println!(
        "estimator bias: I + P converges to Q_eff, underestimating true quality by {:.3}\n",
        model.estimator_bias()
    );

    // agent world with the same parameters, no page births: watch the
    // site roots converge to Q_eff rather than Q
    let cfg = SimConfig {
        num_users: users,
        num_sites: 4,
        visit_ratio,
        page_birth_rate: 0.0,
        quality_dist: QualityDist::Fixed(quality),
        forget_rate,
        dt: 0.05,
        seed: 4242,
        ..Default::default()
    };
    let mut world = World::bootstrap(cfg).expect("bootstrap");
    println!("  t      model P(t)   simulated root popularity");
    let root = world.site_roots()[0];
    for step in 0..=10 {
        let t = step as f64 * 2.0;
        world.run_until(t);
        println!(
            "  {:>4.1}   {:.4}       {:.4}",
            t,
            model.popularity(t),
            world.popularity(root)
        );
    }
    let final_pop = world.popularity(root);
    println!(
        "\nsimulated saturation {:.3} vs analytic Q_eff {:.3} (true quality was {quality})",
        final_pop,
        model.effective_quality()
    );
    println!("ranking is unharmed: the bias is a constant shift across all pages,");
    println!("so the estimator still orders pages by true quality (tested in qrank-model).");
}
